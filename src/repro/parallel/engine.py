"""The parallel scan execution engine.

ZMap scales by handing each scanning process one shard of the same
cyclic-group address permutation; the stateful QScanner/Goscanner
loops are embarrassingly parallel across targets.  This engine applies
both schemes to the simulated campaign, with a data-movement layer
built around three ideas:

- **fork-shared worlds** — the parent builds the simulated world once
  and passes it to the engine; worker processes forked from the parent
  share the snapshot copy-on-write instead of spending ~world-build
  time each rebuilding a replica.  On platforms without ``fork`` the
  worker falls back to rebuilding from the campaign configuration.
- **dep broadcast with a per-worker cache** — stage dependencies
  (target lists, DNS joins) are pickled once, zlib-compressed and
  shipped to every worker exactly once per pool, not embedded in every
  shard task.  A
  barrier guarantees each worker consumes exactly one broadcast task;
  workers keep received deps resident for the pool's lifetime, so a
  dependency shared by several stages (e.g. ``syn_v4``) crosses the
  process boundary a single time.  Shipped bytes, broadcast rounds and
  cache hits are recorded in volatile ``engine.*`` counters (volatile:
  they measure transport, which varies with worker count, and must not
  enter the deterministic ``metrics.json``).
- **adaptive sharding** — callers pass the stage's item count; tiny
  stages are expected to run inline in the parent (see
  ``INLINE_COST_THRESHOLD``), while sharded stages are oversharded to
  ``OVERSHARD_FACTOR × workers`` tasks consumed via ``imap_unordered``
  so a slow shard cannot leave workers idle.  Results are re-sorted by
  shard index before merging, so output — records, metrics bytes —
  stays byte-identical to a serial run.

Every worker returns ``(position, record)`` pairs, where positions are
either cyclic-permutation walk positions (ZMap sweeps) or flat
target-list indices (stateful loops); the merged, position-sorted
output is byte-identical to a serial scan.

Observability rides along with each task: a worker computes its shard
under a *fresh* metrics registry and tracer, and ships the registry
snapshot plus the trace events back with the records.  The parent
merges snapshots in shard order — counter and histogram merges are
exact integer sums (see :mod:`repro.observability.metrics`), so the
merged campaign metrics are identical to a serial run's.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import pickle
import sys
import threading
import time
import zlib
from typing import Dict, List, Optional, Tuple

from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.observability.tracing import EventTracer, use_tracer

__all__ = [
    "ScanEngine",
    "default_worker_count",
    "world_digest",
    "world_key",
    "INLINE_COST_THRESHOLD",
    "OVERSHARD_FACTOR",
]


def _env_int(name: str, default: int) -> int:
    env = os.environ.get(name)
    if env:
        try:
            return int(env)
        except ValueError:
            print(
                f"warning: ignoring invalid {name} value {env!r}",
                file=sys.stderr,
            )
    return default


# Stages whose weighted cost (items x per-item weight, see
# campaign._stage_cost) falls at or below this threshold are run inline
# in the parent: the work is cheaper than shipping it.  Roughly the
# cost of sweeping 25k addresses or ~25 stateful handshakes.
INLINE_COST_THRESHOLD = _env_int("REPRO_INLINE_THRESHOLD", 25_000)

# Sharded stages are split into OVERSHARD_FACTOR x workers tasks pulled
# from an unordered queue, so an unlucky expensive shard cannot leave
# the remaining workers idle behind a barrier.
OVERSHARD_FACTOR = _env_int("REPRO_OVERSHARD", 4)

# How long a worker waits at the broadcast barrier before giving up
# (the broadcast still succeeded for this worker; the barrier only
# enforces one-task-per-worker distribution).
_BARRIER_TIMEOUT = 30.0

# Worker-process state.  The campaign configuration and broadcast
# barrier arrive through the pool initializer; the world replica is
# built (or adopted from the fork snapshot) lazily on the first task so
# pool startup stays cheap.
_WORKER_CONFIG = None
_WORKER_CAMPAIGN = None
_WORKER_BARRIER = None

# Parent-side fork registry: world snapshots published just before a
# pool forks so children inherit the built worlds copy-on-write,
# keyed by :func:`world_digest`.  Each entry is ``(tag, world)`` where
# ``tag`` is either the exact campaign configuration the world was
# built (and profiled) for, or the fleet's pristine sentinel
# (:data:`repro.parallel.fleet.PRISTINE`) marking a profile-free world
# that any configuration sharing the digest may adopt after applying
# its own fault/path profiles.  Spawn children re-import this module
# and see an empty registry, falling back to a rebuild from the
# configuration.
_FORK_SHARED: Dict[str, Tuple[object, object]] = {}


def world_key(config) -> Tuple:
    """The world-shaping subset of a campaign configuration.

    Two configurations with equal world keys build byte-identical
    simulated Internets: fault and path profiles are applied *after*
    the build and deliberately stay out of the key — that is what lets
    a fleet share one world snapshot across a whole scenario matrix.
    """
    return (
        "world",
        config.week,
        dataclasses.astuple(config.scale),
        config.seed,
        config.fast_crypto,
    )


def world_digest(config) -> str:
    """Deterministic digest naming a world snapshot in ``_FORK_SHARED``."""
    return hashlib.sha256(repr(world_key(config)).encode()).hexdigest()[:16]


def default_worker_count() -> int:
    """Worker count from ``REPRO_WORKERS`` or the CPU count."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            print(
                f"warning: ignoring invalid REPRO_WORKERS value {env!r};"
                " falling back to the CPU count",
                file=sys.stderr,
            )
    return os.cpu_count() or 1


def _init_worker(config, barrier) -> None:
    global _WORKER_CONFIG, _WORKER_CAMPAIGN, _WORKER_BARRIER
    _WORKER_CONFIG = config
    _WORKER_CAMPAIGN = None
    _WORKER_BARRIER = barrier


def _replica():
    """The per-process campaign replica.

    Forked workers adopt the parent's world snapshot (copy-on-write;
    the guard on the configuration protects against a stale module
    global from an earlier pool).  Spawned workers — or forks whose
    snapshot is missing — rebuild the world deterministically from the
    configuration.
    """
    global _WORKER_CAMPAIGN
    if _WORKER_CAMPAIGN is None:
        from repro.experiments.campaign import Campaign

        entry = _FORK_SHARED.get(world_digest(_WORKER_CONFIG))
        world = None
        if entry is not None and entry[0] == _WORKER_CONFIG:
            world = entry[1]
        _WORKER_CAMPAIGN = Campaign(_WORKER_CONFIG, world=world)
    return _WORKER_CAMPAIGN


def _recv_deps_on(campaign, payload: bytes, barrier) -> int:
    """Adopt a batch of pickled stage dependencies on ``campaign``.

    The payload maps dependency names to their individually pickled
    values; each is injected into the replica's lazy-stage slot
    (``cached_property`` stores results in the instance ``__dict__``)
    where it stays resident for the pool's lifetime.  The barrier makes
    every worker block until all ``workers`` broadcast tasks have been
    claimed, which is what guarantees one task — and therefore one copy
    of the payload — per worker.  Shared with the fleet's config-routed
    broadcast task (:func:`repro.parallel.fleet._fleet_recv_deps`).
    """
    for name, blob in pickle.loads(zlib.decompress(payload)).items():
        campaign.__dict__[name] = pickle.loads(blob)
    if barrier is not None:
        try:
            barrier.wait(timeout=_BARRIER_TIMEOUT)
        except threading.BrokenBarrierError:
            pass
    return os.getpid()


def _recv_deps(payload: bytes) -> int:
    """Broadcast task: adopt a batch of deps on the local replica."""
    return _recv_deps_on(_replica(), payload, _WORKER_BARRIER)


def _run_shard_on(campaign, task) -> Tuple[int, List, Dict, List[Dict], Optional[str]]:
    """Compute one shard of one stage on ``campaign`` (shared task body).

    Returns the shard index (tasks come back unordered) and the shard's
    ``(position, record)`` pairs plus its metric snapshot and trace
    events, recorded into a registry/tracer that exists only for this
    task (the replica's own accumulated state never leaks into the
    result).  A raising shard is captured as the final element instead
    of crashing the pool — the parent degrades the stage to the
    surviving shards' records.

    Dependencies normally arrived via :func:`_recv_deps`; if any are
    missing (a worker missed a broadcast round), they are recomputed
    locally from the replica — deterministic, so output is unchanged —
    and counted as ``engine.dep_cache_misses``.
    """
    stage, shard, of, dep_names, trace_rate = task
    registry = MetricsRegistry()
    tracer = EventTracer(sample_rate=trace_rate)
    missing = [name for name in dep_names if name not in campaign.__dict__]
    if missing:
        # Recompute outside the task registry: the parent already
        # recorded the dep stages' scanner metrics when it computed
        # them, so a fallback recompute must not double-count.
        for name in missing:
            getattr(campaign, name)
        registry.counter("engine.dep_cache_misses", volatile=True).inc(len(missing))
    error: Optional[str] = None
    with use_metrics(registry), use_tracer(tracer):
        try:
            pairs = campaign.compute_stage_shard(stage, shard, of)
        except Exception as exc:
            pairs = []
            error = f"shard {shard}/{of}: {type(exc).__name__}: {exc}"
    return shard, pairs, registry.snapshot(), tracer.drain(), error


def _run_shard(task) -> Tuple[int, List, Dict, List[Dict], Optional[str]]:
    """Pool task: compute one shard of one stage on the local replica."""
    return _run_shard_on(_replica(), task)


class ScanEngine:
    """A persistent worker pool executing campaign stages in shards."""

    def __init__(self, config, workers: Optional[int] = None, world=None):
        self._config = config
        self.workers = max(1, workers if workers is not None else default_worker_count())
        self._world = world
        self._pool = None
        # Dependency names already broadcast to the current pool, plus
        # each dep's pickled size (for the naive-baseline counter).
        self._sent_deps: set = set()
        self._dep_sizes: Dict[str, int] = {}

    # -- pool lifecycle -------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                context = multiprocessing.get_context("spawn")
            barrier = context.Barrier(self.workers)
            # Publish the parent's built world for the fork to inherit;
            # Pool() spawns its workers synchronously, so the window is
            # closed again right after (children keep their fork-time
            # copy of the registry).
            digest = world_digest(self._config)
            if self._world is not None:
                _FORK_SHARED[digest] = (self._config, self._world)
            try:
                self._pool = context.Pool(
                    processes=self.workers,
                    initializer=_init_worker,
                    initargs=(self._config, barrier),
                )
            finally:
                _FORK_SHARED.pop(digest, None)
            self._sent_deps = set()
        return self._pool

    def close(self, timeout: float = 10.0) -> None:
        """Shut down the pool, letting in-flight tasks finish.

        ``close()`` + ``join()`` lets workers drain gracefully (a
        terminate can kill a worker mid-write); workers still alive
        after ``timeout`` seconds are terminated.
        """
        pool = self._pool
        if pool is None:
            return
        self._pool = None
        pool.close()
        workers = list(getattr(pool, "_pool", ()))
        deadline = time.monotonic() + timeout
        while any(p.is_alive() for p in workers) and time.monotonic() < deadline:
            time.sleep(0.02)
        if any(p.is_alive() for p in workers):
            pool.terminate()
        pool.join()

    def __enter__(self) -> "ScanEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best effort; explicit close() is preferred
        try:
            self.close(timeout=0.0)
        except Exception:
            pass

    # -- dep broadcast --------------------------------------------------------
    def _broadcast_deps(
        self,
        deps: Dict[str, object],
        tasks: int,
        metrics: Optional[MetricsRegistry],
    ) -> None:
        """Ship not-yet-resident deps to every worker exactly once.

        Each new dependency is pickled once; the combined payload is
        zlib-compressed and goes out as ``workers`` barrier-synchronised
        broadcast tasks, so every worker receives exactly one copy.
        Already-resident deps cost nothing (a cache hit per worker).
        The naive baseline counter records what the old scheme — the
        full deps dict pickled *uncompressed* into every shard task —
        would have shipped.
        """
        pool = self._ensure_pool()
        fresh = {name: value for name, value in deps.items() if name not in self._sent_deps}
        if fresh:
            blobs = {
                name: pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
                for name, value in fresh.items()
            }
            for name, blob in blobs.items():
                self._dep_sizes[name] = len(blob)
            # Scan-record pickles are highly redundant (repeated field
            # names, version strings, address prefixes); compressing the
            # combined payload typically shrinks the broadcast several
            # times over on top of the once-per-worker saving.
            payload = zlib.compress(
                pickle.dumps(blobs, protocol=pickle.HIGHEST_PROTOCOL), level=6
            )
            receivers = self._broadcast_payload(pool, payload)
            self._sent_deps.update(fresh)
            if metrics is not None:
                metrics.counter("engine.dep_broadcasts", volatile=True).inc()
                metrics.counter("engine.dep_bytes_shipped", volatile=True).inc(
                    len(payload) * self.workers
                )
                if len(set(receivers)) < self.workers:
                    # A worker claimed two broadcast tasks (broken or
                    # timed-out barrier): some worker missed the round
                    # and will fall back to a local dep recompute.
                    metrics.counter("engine.dep_broadcast_uneven", volatile=True).inc()
        if metrics is not None and deps:
            hits = len(deps) - len(fresh)
            if hits:
                metrics.counter("engine.dep_cache_hits", volatile=True).inc(
                    hits * self.workers
                )
            naive = sum(self._dep_sizes.get(name, 0) for name in deps)
            metrics.counter("engine.dep_bytes_naive", volatile=True).inc(naive * tasks)

    def _broadcast_payload(self, pool, payload: bytes) -> List[int]:
        """One barrier-synchronised broadcast round (subclass hook).

        Fleet engines override this to wrap the task so a shared pool
        serving many campaigns routes the payload to the right replica.
        """
        return pool.map(_recv_deps, [payload] * self.workers, chunksize=1)

    # -- execution ---------------------------------------------------------------
    def _submit_shards(self, pool, tasks):
        """Submit shard tasks and yield unordered results (subclass hook)."""
        return pool.imap_unordered(_run_shard, tasks, chunksize=1)

    def task_count(self, size_hint: Optional[int] = None) -> int:
        """How many shard tasks a stage of ``size_hint`` items gets."""
        tasks = self.workers * max(1, OVERSHARD_FACTOR)
        if size_hint is not None:
            tasks = max(min(tasks, size_hint), self.workers)
        return tasks

    def run_stage(
        self,
        stage: str,
        deps: Optional[Dict[str, object]] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[EventTracer] = None,
        size_hint: Optional[int] = None,
    ) -> Tuple[List[object], List[str], int]:
        """Run one stage across all workers and merge deterministically.

        The stage is split into :meth:`task_count` shard tasks consumed
        via ``imap_unordered``; completed shards come back in arbitrary
        order and are re-sorted by shard index before metric/trace
        merging and position-sorting, so results and merged metrics are
        byte-identical to a serial run.

        When ``metrics``/``tracer`` are given, each shard's metric
        snapshot is merged in (in shard order; the merge is exact, so
        totals equal a serial run's) and its trace events appended.

        Returns ``(records, errors, tasks)``: records from every
        *surviving* shard in serial order, one error string per failed
        shard (a failed shard contributes neither records nor metrics,
        so a healthy run's output is untouched by the error channel),
        and the number of shard tasks used.
        """
        deps = deps or {}
        pool = self._ensure_pool()
        shards = self.task_count(size_hint)
        self._broadcast_deps(deps, shards, metrics)
        trace_rate = tracer.sample_rate if tracer is not None else 0.0
        dep_names = tuple(deps)
        tasks = [(stage, shard, shards, dep_names, trace_rate) for shard in range(shards)]
        if metrics is not None:
            metrics.counter("engine.stages_sharded", volatile=True).inc()
            metrics.counter("engine.tasks", volatile=True).inc(shards)
        # A close()/terminate() racing this merge (watchdog, signal
        # handler, interpreter teardown) kills workers with shards in
        # flight.  Whatever subset of results made it back must NOT be
        # returned as a quietly-short merge — report every shard failed
        # so the stage degrades to "failed" instead.
        try:
            results = sorted(
                self._submit_shards(pool, tasks),
                key=lambda item: item[0],
            )
        except Exception as exc:
            abort = (
                f"shards aborted: engine closed with tasks in flight"
                f" ({type(exc).__name__}: {exc})"
            )
            return [], [abort] * shards, shards
        if self._pool is not pool or len(results) < shards:
            abort = "shards aborted: engine closed with tasks in flight"
            return [], [abort] * shards, shards
        tagged: List[Tuple[int, object]] = []
        errors: List[str] = []
        for _shard, pairs, snapshot, events, error in results:
            if error is not None:
                errors.append(error)
                continue
            tagged.extend(pairs)
            if metrics is not None:
                metrics.merge_snapshot(snapshot)
            if tracer is not None and events:
                tracer.extend(events)
        tagged.sort(key=lambda item: item[0])
        return [record for _, record in tagged], errors, shards
