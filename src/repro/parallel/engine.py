"""The parallel scan execution engine.

ZMap scales by handing each scanning process one shard of the same
cyclic-group address permutation; the stateful QScanner/Goscanner
loops are embarrassingly parallel across targets.  This engine applies
both schemes to the simulated campaign:

- every worker process builds its own deterministic world replica from
  the campaign configuration (``(week, scale, seed, ...)``), so no
  simulated state is shared between processes,
- stage *inputs* that were already computed in the parent (target
  lists, DNS joins) are shipped to the workers with each task and
  injected into the replica's lazy-stage slots, so dependencies are
  never recomputed per worker,
- every worker returns ``(position, record)`` pairs, where positions
  are either cyclic-permutation walk positions (ZMap sweeps) or flat
  target-list indices (stateful loops); the merged, position-sorted
  output is byte-identical to a serial scan.

The pool is lazy and persistent: world replicas are built once per
worker process and reused for every subsequent stage of the same
campaign.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, List, Optional, Tuple

__all__ = ["ScanEngine", "default_worker_count"]

# Worker-process state: the campaign configuration arrives through the
# pool initializer; the world replica is built lazily on the first
# task so pool startup stays cheap.
_WORKER_CONFIG = None
_WORKER_CAMPAIGN = None


def default_worker_count() -> int:
    """Worker count from ``REPRO_WORKERS`` or the CPU count."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _init_worker(config) -> None:
    global _WORKER_CONFIG, _WORKER_CAMPAIGN
    _WORKER_CONFIG = config
    _WORKER_CAMPAIGN = None


def _replica():
    """The per-process campaign replica (world rebuilt on first use)."""
    global _WORKER_CAMPAIGN
    if _WORKER_CAMPAIGN is None:
        from repro.experiments.campaign import Campaign

        _WORKER_CAMPAIGN = Campaign(_WORKER_CONFIG)
    return _WORKER_CAMPAIGN


def _run_shard(task) -> List[Tuple[int, object]]:
    """Pool task: compute one shard of one stage on the local replica."""
    stage, shard, of, deps = task
    campaign = _replica()
    # Inject parent-computed dependencies into the replica's lazy
    # slots (cached_property stores results in the instance __dict__),
    # so e.g. a qscan shard does not re-run the goscanner stages.
    for name, value in deps.items():
        campaign.__dict__[name] = value
    return campaign.compute_stage_shard(stage, shard, of)


class ScanEngine:
    """A persistent worker pool executing campaign stages in shards."""

    def __init__(self, config, workers: Optional[int] = None):
        self._config = config
        self.workers = max(1, workers if workers is not None else default_worker_count())
        self._pool = None

    # -- pool lifecycle -------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                context = multiprocessing.get_context("spawn")
            self._pool = context.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(self._config,),
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ScanEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best effort; explicit close() is preferred
        try:
            self.close()
        except Exception:
            pass

    # -- execution ---------------------------------------------------------------
    def run_stage(
        self, stage: str, deps: Optional[Dict[str, object]] = None
    ) -> List[object]:
        """Run one stage across all workers and merge deterministically."""
        deps = deps or {}
        shards = self.workers
        tasks = [(stage, shard, shards, deps) for shard in range(shards)]
        pool = self._ensure_pool()
        tagged: List[Tuple[int, object]] = []
        for part in pool.map(_run_shard, tasks, chunksize=1):
            tagged.extend(part)
        tagged.sort(key=lambda item: item[0])
        return [record for _, record in tagged]
