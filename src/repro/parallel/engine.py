"""The parallel scan execution engine.

ZMap scales by handing each scanning process one shard of the same
cyclic-group address permutation; the stateful QScanner/Goscanner
loops are embarrassingly parallel across targets.  This engine applies
both schemes to the simulated campaign:

- every worker process builds its own deterministic world replica from
  the campaign configuration (``(week, scale, seed, ...)``), so no
  simulated state is shared between processes,
- stage *inputs* that were already computed in the parent (target
  lists, DNS joins) are shipped to the workers with each task and
  injected into the replica's lazy-stage slots, so dependencies are
  never recomputed per worker,
- every worker returns ``(position, record)`` pairs, where positions
  are either cyclic-permutation walk positions (ZMap sweeps) or flat
  target-list indices (stateful loops); the merged, position-sorted
  output is byte-identical to a serial scan.

The pool is lazy and persistent: world replicas are built once per
worker process and reused for every subsequent stage of the same
campaign.

Observability rides along with each task: a worker computes its shard
under a *fresh* metrics registry and tracer, and ships the registry
snapshot plus the drained trace events back with the records.  The
parent merges snapshots in shard order — counter and histogram merges
are exact integer sums (see :mod:`repro.observability.metrics`), so
the merged campaign metrics are identical to a serial run's.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Dict, List, Optional, Tuple

from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.observability.tracing import EventTracer, use_tracer

__all__ = ["ScanEngine", "default_worker_count"]

# Worker-process state: the campaign configuration arrives through the
# pool initializer; the world replica is built lazily on the first
# task so pool startup stays cheap.
_WORKER_CONFIG = None
_WORKER_CAMPAIGN = None


def default_worker_count() -> int:
    """Worker count from ``REPRO_WORKERS`` or the CPU count."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _init_worker(config) -> None:
    global _WORKER_CONFIG, _WORKER_CAMPAIGN
    _WORKER_CONFIG = config
    _WORKER_CAMPAIGN = None


def _replica():
    """The per-process campaign replica (world rebuilt on first use)."""
    global _WORKER_CAMPAIGN
    if _WORKER_CAMPAIGN is None:
        from repro.experiments.campaign import Campaign

        _WORKER_CAMPAIGN = Campaign(_WORKER_CONFIG)
    return _WORKER_CAMPAIGN


def _run_shard(task) -> Tuple[List[Tuple[int, object]], Dict, List[Dict], Optional[str]]:
    """Pool task: compute one shard of one stage on the local replica.

    Returns the shard's ``(position, record)`` pairs plus the shard's
    metric snapshot and trace events, recorded into a registry/tracer
    that exists only for this task (the replica's own accumulated
    state never leaks into the result).  A raising shard is captured as
    the fourth element instead of crashing the pool — the parent
    degrades the stage to the surviving shards' records.
    """
    stage, shard, of, deps, trace_rate = task
    campaign = _replica()
    # Inject parent-computed dependencies into the replica's lazy
    # slots (cached_property stores results in the instance __dict__),
    # so e.g. a qscan shard does not re-run the goscanner stages.
    for name, value in deps.items():
        campaign.__dict__[name] = value
    registry = MetricsRegistry()
    tracer = EventTracer(sample_rate=trace_rate)
    error: Optional[str] = None
    with use_metrics(registry), use_tracer(tracer):
        try:
            pairs = campaign.compute_stage_shard(stage, shard, of)
        except Exception as exc:
            pairs = []
            error = f"shard {shard}/{of}: {type(exc).__name__}: {exc}"
    return pairs, registry.snapshot(), tracer.drain(), error


class ScanEngine:
    """A persistent worker pool executing campaign stages in shards."""

    def __init__(self, config, workers: Optional[int] = None):
        self._config = config
        self.workers = max(1, workers if workers is not None else default_worker_count())
        self._pool = None

    # -- pool lifecycle -------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                context = multiprocessing.get_context("spawn")
            self._pool = context.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(self._config,),
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ScanEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best effort; explicit close() is preferred
        try:
            self.close()
        except Exception:
            pass

    # -- execution ---------------------------------------------------------------
    def run_stage(
        self,
        stage: str,
        deps: Optional[Dict[str, object]] = None,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[EventTracer] = None,
    ) -> Tuple[List[object], List[str]]:
        """Run one stage across all workers and merge deterministically.

        When ``metrics``/``tracer`` are given, each shard's metric
        snapshot is merged in (in shard order; the merge is exact, so
        totals equal a serial run's) and its trace events appended.

        Returns ``(records, errors)``: records from every *surviving*
        shard in serial order, plus one error string per failed shard
        (a failed shard contributes neither records nor metrics, so a
        healthy run's output is untouched by the error channel).
        """
        deps = deps or {}
        shards = self.workers
        trace_rate = tracer.sample_rate if tracer is not None else 0.0
        tasks = [(stage, shard, shards, deps, trace_rate) for shard in range(shards)]
        pool = self._ensure_pool()
        tagged: List[Tuple[int, object]] = []
        errors: List[str] = []
        for pairs, snapshot, events, error in pool.map(_run_shard, tasks, chunksize=1):
            if error is not None:
                errors.append(error)
                continue
            tagged.extend(pairs)
            if metrics is not None:
                metrics.merge_snapshot(snapshot)
            if tracer is not None and events:
                tracer.extend(events)
        tagged.sort(key=lambda item: item[0])
        return [record for _, record in tagged], errors
