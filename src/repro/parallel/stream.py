"""Streaming dataflow execution of campaign scan stages.

The barrier engine (:mod:`repro.parallel.engine`) runs a parallel
campaign one stage at a time: every shard of a ZMap sweep must return
before the first downstream handshake starts, so the stateful scanners
sit idle while the sweeps run and each stage pays the latency of its
slowest shard.  This module replaces the stage barrier with record
streaming:

- **prefix-ordered sweep chunks** — IPv4 sweeps are partitioned into
  contiguous walk segments (:meth:`CyclicGroupPermutation.iter_range`)
  instead of interleaved sub-cycles, so completed chunks form a
  *prefix* of the serial visit order and their responders can feed
  downstream stages while later segments are still sweeping,
- **records as dataflow** — a completed upstream chunk's surviving
  records are transformed parent-side into the consumer stage's
  target items and shipped inside the consumer's chunk task; workers
  never resolve stage dependencies, so the dep broadcast (and its
  barrier) disappears entirely,
- **bounded queues with backpressure** — buffered consumer items are
  capped (``REPRO_STREAM_QUEUE``); when handshake stages fall behind,
  sweep dispatch stalls instead of buffering unboundedly, and stalls
  are counted (``stream.backpressure_stalls``),
- **deterministic merge** — every chunk computes under a fresh metrics
  registry, positions are absolute (walk positions or serial
  target-list indices), fault epochs are keyed by stage name, and
  scanner rng state is ``seek()``-ed to the chunk's global offset;
  re-sorting merged pairs by position makes records *and* rendered
  ``metrics.json`` byte-identical to a serial run (the ``repro
  conform`` differential oracle holds with streaming enabled).

Chunk scheduling is depth-first: QScanner chunks preempt Goscanner
chunks preempt sweep chunks, so discovered targets drain through the
pipeline instead of piling up behind fresh sweep work.  Stage health
semantics match the barrier engine: a failed chunk degrades its stage
to the surviving chunks' records and downstream stages keep running on
whatever survived; degraded stages are never cached.

Observability is volatile by design — ``stream.*`` counters and gauges
measure transport and scheduling, which vary with worker count, and
must never enter the deterministic ``metrics.json``.
"""

from __future__ import annotations

import multiprocessing
import queue
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.observability.metrics import MetricsRegistry, use_metrics
from repro.observability.tracing import EventTracer, use_tracer
from repro.parallel import engine as engine_module
from repro.parallel.engine import OVERSHARD_FACTOR, _env_int, _init_worker, _replica
from repro.quic.versions import QSCANNER_SUPPORTED

__all__ = ["StreamEngine", "run_streaming", "stream_queue_limit"]

# How many chunks per worker a source sweep is cut into.  Finer than
# the barrier engine's oversharding: early chunks must complete early
# for downstream overlap, and sweep chunks are cheap to ship (two
# integers).
_STREAM_CHUNKS_PER_WORKER = _env_int("REPRO_STREAM_CHUNKS", 8)

# Floor sizes keeping chunks worth their IPC round-trip.
_MIN_SWEEP_CHUNK = 2048  # walk positions (~microseconds each)
_MIN_TARGET_CHUNK = 64  # explicit-list probes

# Consumer batching: accumulate at least this many targets before
# shipping a handshake chunk (flushed regardless when upstream ends),
# and split floods (e.g. a cache-hit upstream arriving whole) into
# chunks of at most REPRO_STREAM_MAX_BATCH so one consumer stage still
# spreads across workers.
_MIN_BATCH = _env_int("REPRO_STREAM_BATCH", 16)
_MAX_BATCH = _env_int("REPRO_STREAM_MAX_BATCH", 256)

# A chunk that produces no completion within this window means the
# pool died or the scheduler wedged; fail loudly instead of hanging.
_COMPLETION_TIMEOUT = 300.0


def stream_queue_limit() -> int:
    """Max buffered consumer items before sweep dispatch stalls."""
    return _env_int("REPRO_STREAM_QUEUE", 2048)


# Dataflow edges: upstream stage -> consumer stages fed per completed
# prefix chunk.  qscan_sni_* are barrier consumers (their target union
# needs the *complete* zmap + goscanner_sni output) and are planned
# when their requirements finalize.
_CONSUMERS: Dict[str, Tuple[str, ...]] = {
    "syn_v4": ("goscanner_nosni_v4", "goscanner_sni_v4"),
    "syn_v6": ("goscanner_nosni_v6", "goscanner_sni_v6"),
    "zmap_v4": ("qscan_nosni_v4",),
    "zmap_v6": ("qscan_nosni_v6",),
}

_BARRIER_STAGES: Dict[str, Tuple[str, ...]] = {
    "qscan_sni_v4": ("zmap_v4", "goscanner_sni_v4"),
    "qscan_sni_v6": ("zmap_v6", "goscanner_sni_v6"),
}

# Pipeline depth drives dispatch priority: deeper stages drain first.
_DEPTH: Dict[str, int] = {
    "zmap_v4": 0,
    "zmap_v6": 0,
    "syn_v4": 0,
    "syn_v6": 0,
    "goscanner_nosni_v4": 1,
    "goscanner_sni_v4": 1,
    "goscanner_nosni_v6": 1,
    "goscanner_sni_v6": 1,
    "qscan_nosni_v4": 1,
    "qscan_nosni_v6": 1,
    "qscan_sni_v4": 2,
    "qscan_sni_v6": 2,
}


def _compute_chunk_on(campaign, task):
    """Compute one streaming chunk on ``campaign`` (shared task body).

    Mirrors the barrier engine's ``_run_shard`` observability contract:
    a fresh registry/tracer per task, exceptions captured as the final
    element so one bad chunk degrades its stage instead of crashing the
    pool.  Shared with the fleet's config-routed task wrapper
    (:func:`repro.parallel.fleet._fleet_stream_chunk`).
    """
    kind, stage, seq, lo, payload, trace_rate = task
    registry = MetricsRegistry()
    tracer = EventTracer(sample_rate=trace_rate)
    error: Optional[str] = None
    with use_metrics(registry), use_tracer(tracer):
        try:
            if kind == "range":
                pairs = campaign.compute_stage_range(stage, lo, payload)
            elif kind == "targets":
                pairs = campaign.compute_stage_targets(stage, lo, payload)
            else:
                pairs = campaign.compute_stage_chunk(stage, lo, payload)
        except Exception as exc:
            pairs = []
            error = f"chunk {seq} @{lo}: {type(exc).__name__}: {exc}"
    return stage, seq, pairs, registry.snapshot(), tracer.drain(), error


def _stream_chunk(task):
    """Pool task: compute one streaming chunk on the local replica."""
    return _compute_chunk_on(_replica(), task)


def _derive_items(campaign, consumer: str, records: List) -> List:
    """Transform upstream records into a consumer stage's target items.

    Item order — and therefore every item's global index — matches the
    serial target-list construction exactly: records arrive in serial
    prefix order and each transformation is order-preserving.
    """
    if consumer.startswith("goscanner_nosni"):
        return [record.address for record in records]
    if consumer.startswith("goscanner_sni"):
        cap = campaign.config.max_domains_per_address
        join = campaign.dns_join
        return [
            (record.address, domain)
            for record in records
            for domain in join.domains_for(record.address)[:cap]
        ]
    if consumer.startswith("qscan_nosni"):
        return [
            record.address
            for record in records
            if set(record.versions) & QSCANNER_SUPPORTED
        ]
    raise KeyError(f"unknown consumer stage: {consumer}")


@dataclass
class _StageNode:
    """Parent-side scheduling state for one streaming stage."""

    name: str
    depth: int
    cache_state: str = "off"
    started: Optional[float] = None
    finished: Optional[float] = None
    # Chunk bookkeeping.  ``total`` stays None until the chunk count is
    # known (sources: at planning; consumers: when upstream ends).
    total: Optional[int] = None
    planned: int = 0
    completed: int = 0
    next_seq: int = 0
    results: Dict[int, Tuple] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)
    # Consumer-side input buffer and global item cursor.
    pending_items: List = field(default_factory=list)
    emitted: int = 0
    upstream_done: bool = False
    finalized: bool = False
    records: List = field(default_factory=list)


class StreamEngine:
    """Schedules a campaign's stages as a streaming chunk dataflow."""

    def __init__(self, campaign, workers: Optional[int] = None, fleet=None):
        self.campaign = campaign
        self.workers = max(1, workers if workers is not None else campaign._workers)
        self._fleet = fleet
        self._pool = None
        self._nodes: Dict[str, _StageNode] = {}
        self._ready: Dict[int, deque] = {0: deque(), 1: deque(), 2: deque()}
        self._completions: queue.Queue = queue.Queue()
        self._inflight = 0
        self._inflight_depth: Dict[int, int] = {0: 0, 1: 0, 2: 0}
        self._cap = self.workers * max(1, OVERSHARD_FACTOR)
        self._min_batch = max(1, _MIN_BATCH)
        self._max_batch = max(self._min_batch, _MAX_BATCH)
        self._queue_limit = max(1, stream_queue_limit())
        # Volatile telemetry.
        self._tasks_total = 0
        self._stalls = 0
        self._queue_max = 0
        self._inflight_max = 0

    # -- public entry ------------------------------------------------------
    def run(self) -> None:
        """Stream every stage of :data:`_STAGE_ORDER` to completion."""
        campaign = self.campaign
        start = time.perf_counter()
        with use_metrics(campaign.metrics), use_tracer(campaign.tracer):
            # Parent-side plain stages: cheap, and every streaming
            # stage's item derivation depends on them.  Building the
            # world here also lets the pool fork inherit it.
            campaign.all_dns_records
            campaign.dns_join
            campaign.ipv6_scan_input
            self._plan()
            try:
                if not self._all_finalized():
                    self._ensure_pool()
                    self._loop()
            finally:
                self._close_pool()
            self._record_telemetry(time.perf_counter() - start)

    # -- planning ----------------------------------------------------------
    def _plan(self) -> None:
        from repro.experiments.campaign import _STAGE_ORDER, StageHealth

        campaign = self.campaign
        cache = campaign.stage_cache
        for name in _STAGE_ORDER:
            self._nodes[name] = _StageNode(
                name=name,
                depth=_DEPTH[name],
                cache_state="off" if cache is None else "miss",
            )
        # Adopt stages in one pass, in stage order, *before* feeding
        # anything: a consumer that is itself settled must never receive
        # chunks.  Two settled kinds: stages already materialized on the
        # campaign (an earlier run computed them — their stage_records
        # counters were recorded then, so re-accounting here would
        # double them) and cache hits (accounted via ``_complete``).
        preset: List[_StageNode] = []
        for name in _STAGE_ORDER:
            node = self._nodes[name]
            if name in campaign.__dict__:
                node.finalized = True
                node.started = node.finished = time.perf_counter()
                node.total = 0
                node.records = campaign.__dict__[name]
                preset.append(node)
                continue
            if cache is not None:
                cached = cache.load(name)
                if cached is not None:
                    node.cache_state = "hit"
                    node.started = time.perf_counter()
                    node.total = 0
                    self._complete(node, cached, StageHealth(stage=name))
                    preset.append(node)
        for node in preset:
            self._feed_records(node.name, node.records)
            self._upstream_finished(node)
        for name in ("zmap_v4", "syn_v4"):
            self._plan_sweep(name)
        for name in ("zmap_v6", "syn_v6"):
            self._plan_targets(name)

    def _plan_sweep(self, name: str) -> None:
        campaign = self.campaign
        node = self._nodes[name]
        if node.finalized:
            return
        node.started = time.perf_counter()
        scanner = (
            campaign._zmap_scanner(4) if name == "zmap_v4" else campaign._syn_scanner(4)
        )
        cycle = scanner.sweep_cycle_length(campaign.world.ipv4_space)
        chunks = self._source_chunk_count(cycle, _MIN_SWEEP_CHUNK)
        from repro.experiments.campaign import shard_block_bounds

        for seq in range(chunks):
            lo, hi = shard_block_bounds(cycle, seq, chunks)
            self._ready[0].append(("range", name, seq, lo, hi))
        node.total = node.planned = chunks
        if chunks == 0:
            self._finalize(node)

    def _plan_targets(self, name: str) -> None:
        campaign = self.campaign
        node = self._nodes[name]
        if node.finalized:
            return
        node.started = time.perf_counter()
        targets = campaign.ipv6_scan_input
        chunks = self._source_chunk_count(len(targets), _MIN_TARGET_CHUNK)
        from repro.experiments.campaign import shard_block_bounds

        for seq in range(chunks):
            lo, hi = shard_block_bounds(len(targets), seq, chunks)
            self._ready[0].append(("targets", name, seq, lo, targets[lo:hi]))
        node.total = node.planned = chunks
        if chunks == 0:
            self._finalize(node)

    def _plan_sni(self, name: str) -> None:
        """Plan a barrier consumer once its requirements finalized."""
        campaign = self.campaign
        node = self._nodes[name]
        node.started = time.perf_counter()
        family = 6 if name.endswith("v6") else 4
        node.pending_items = list(campaign._sorted_sni_targets(family))
        node.upstream_done = True
        self._flush(node, force=True)
        node.total = node.planned
        if node.total == 0:
            self._finalize(node)

    def _maybe_plan_barriers(self) -> None:
        for name, requirements in _BARRIER_STAGES.items():
            node = self._nodes[name]
            if node.finalized or node.started is not None:
                continue
            if all(self._nodes[req].finalized for req in requirements):
                self._plan_sni(name)

    def _source_chunk_count(self, items: int, min_chunk: int) -> int:
        if items <= 0:
            return 0
        cap = max(1, self.workers * _STREAM_CHUNKS_PER_WORKER)
        return max(1, min(cap, max(1, items // min_chunk)))

    # -- dataflow ----------------------------------------------------------
    def _feed_records(self, name: str, records: List) -> None:
        for consumer in _CONSUMERS.get(name, ()):
            cnode = self._nodes[consumer]
            if cnode.finalized or cnode.cache_state == "hit":
                continue
            items = _derive_items(self.campaign, consumer, records)
            if items:
                cnode.pending_items.extend(items)
                self._flush(cnode, force=cnode.upstream_done)

    def _flush(self, node: _StageNode, force: bool = False) -> None:
        items = node.pending_items
        if not items or (not force and len(items) < self._min_batch):
            return
        node.pending_items = []
        for lo, hi in self._split(node, items):
            seq = node.planned
            node.planned += 1
            self._ready[node.depth].append(
                ("chunk", node.name, seq, node.emitted + lo, items[lo:hi])
            )
        node.emitted += len(items)

    def _split(self, node: _StageNode, items: List) -> List[Tuple[int, int]]:
        """Cut one flush batch into at-most-``_MAX_BATCH``-item chunks.

        SNI stages align cuts on address runs — all connections to one
        server must stay in one chunk so the server's per-connection
        state sequence replays the serial scan (the same invariant the
        barrier engine enforces with :func:`aligned_block_bounds`).
        """
        count = (len(items) + self._max_batch - 1) // self._max_batch
        if count <= 1:
            return [(0, len(items))]
        from repro.experiments.campaign import aligned_block_bounds, shard_block_bounds

        if node.name.startswith(("goscanner_sni", "qscan_sni")):
            bounds = [
                aligned_block_bounds([item[0] for item in items], k, count)
                for k in range(count)
            ]
        else:
            bounds = [shard_block_bounds(len(items), k, count) for k in range(count)]
        return [(lo, hi) for lo, hi in bounds if hi > lo]

    def _upstream_finished(self, node: _StageNode) -> None:
        for consumer in _CONSUMERS.get(node.name, ()):
            cnode = self._nodes[consumer]
            if cnode.finalized or cnode.cache_state == "hit":
                continue
            cnode.upstream_done = True
            if cnode.started is None:
                cnode.started = time.perf_counter()
            self._flush(cnode, force=True)
            cnode.total = cnode.planned
            if cnode.completed == cnode.total:
                self._finalize(cnode)
        self._maybe_plan_barriers()

    # -- chunk lifecycle ---------------------------------------------------
    def _submit(self, task) -> None:
        kind, stage, seq, lo, payload = task
        node = self._nodes[stage]
        if node.started is None:
            node.started = time.perf_counter()
        self._inflight += 1
        self._inflight_depth[node.depth] += 1
        self._inflight_max = max(self._inflight_max, self._inflight)
        self._tasks_total += 1
        full = (kind, stage, seq, lo, payload, self.campaign.tracer.sample_rate)

        def on_done(result):
            self._completions.put(("ok", result))

        def on_error(exc, stage=stage, seq=seq):
            self._completions.put(("err", (stage, seq, exc)))

        if self._fleet is not None:
            func, args = self._fleet.stream_task(self.campaign.config, full)
        else:
            func, args = _stream_chunk, (full,)
        self._pool.apply_async(
            func, args, callback=on_done, error_callback=on_error
        )

    def _consumer_backlog(self) -> int:
        """Buffered consumer items not yet inside a worker."""
        total = 0
        for node in self._nodes.values():
            if node.depth > 0 and not node.finalized:
                total += len(node.pending_items)
        for depth in (1, 2):
            for task in self._ready[depth]:
                total += len(task[4])
        return total

    def _dispatch(self) -> None:
        stalled = False
        while self._inflight < self._cap:
            backlog = self._consumer_backlog()
            self._queue_max = max(
                self._queue_max, backlog, sum(len(d) for d in self._ready.values())
            )
            task = None
            for depth in (2, 1):
                if self._ready[depth]:
                    task = self._ready[depth].popleft()
                    break
            if task is None and self._ready[0]:
                if backlog >= self._queue_limit:
                    # Sweeps are outrunning the handshake stages: stall
                    # source dispatch and push the buffered targets into
                    # consumer chunks instead, so the stall drains the
                    # pipeline rather than wedging it.
                    stalled = True
                    flushed = False
                    for node in self._nodes.values():
                        if node.depth > 0 and not node.finalized and node.pending_items:
                            self._flush(node, force=True)
                            flushed = True
                    if flushed:
                        continue
                    if self._inflight == 0:
                        # Liveness: with nothing running and nothing to
                        # flush, a stalled source is the only progress.
                        task = self._ready[0].popleft()
                else:
                    task = self._ready[0].popleft()
            if task is None:
                break
            self._submit(task)
        if stalled:
            self._stalls += 1

    def _loop(self) -> None:
        while not self._all_finalized():
            self._dispatch()
            if self._inflight == 0:
                pending = [n.name for n in self._nodes.values() if not n.finalized]
                raise RuntimeError(f"streaming scheduler wedged; pending: {pending}")
            try:
                kind, payload = self._completions.get(timeout=_COMPLETION_TIMEOUT)
            except queue.Empty:
                raise RuntimeError(
                    f"no chunk completed within {_COMPLETION_TIMEOUT}s; "
                    "worker pool presumed dead"
                ) from None
            self._handle(kind, payload)
            while True:
                try:
                    kind, payload = self._completions.get_nowait()
                except queue.Empty:
                    break
                self._handle(kind, payload)

    def _handle(self, kind: str, payload) -> None:
        if kind == "err":
            stage, seq, exc = payload
            result = (
                stage,
                seq,
                [],
                {},
                [],
                f"chunk {seq}: {type(exc).__name__}: {exc}",
            )
        else:
            result = payload
        stage, seq, pairs, snapshot, events, error = result
        node = self._nodes[stage]
        self._inflight -= 1
        self._inflight_depth[node.depth] -= 1
        node.results[seq] = (pairs, snapshot, events, error)
        node.completed += 1
        self._advance(node)

    def _advance(self, node: _StageNode) -> None:
        # Feed consumers strictly in prefix order: chunk seq N's records
        # only flow once 0..N-1 have flowed (failed chunks flow nothing,
        # matching the barrier engine's surviving-records degradation).
        while node.next_seq in node.results:
            pairs, _, _, error = node.results[node.next_seq]
            node.next_seq += 1
            if error is None and pairs:
                self._feed_records(node.name, [record for _, record in pairs])
        if (
            node.total is not None
            and node.completed == node.total
            and not node.finalized
        ):
            self._finalize(node)

    def _finalize(self, node: _StageNode) -> None:
        from repro.experiments.campaign import StageHealth

        campaign = self.campaign
        merged: List[Tuple[int, object]] = []
        for seq in range(node.total or 0):
            pairs, snapshot, events, error = node.results[seq]
            if error is not None:
                node.errors.append(error)
                continue
            merged.extend(pairs)
            if snapshot:
                campaign.metrics.merge_snapshot(snapshot)
            if events:
                campaign.tracer.extend(events)
        node.results.clear()
        merged.sort(key=lambda item: item[0])
        records = [record for _, record in merged]
        if not node.errors:
            status = "success"
        elif len(node.errors) >= max(node.total or 0, 1):
            status = "failed"
        else:
            status = "degraded"
        health = StageHealth(
            stage=node.name,
            status=status,
            error="; ".join(node.errors) or None,
            shards=max(node.total or 0, 1),
            shards_failed=len(node.errors),
        )
        self._complete(node, records, health)
        self._upstream_finished(node)

    def _complete(self, node: _StageNode, records: List, health) -> None:
        """Install a finished stage on the campaign (shared with hits)."""
        campaign = self.campaign
        node.finalized = True
        node.finished = time.perf_counter()
        if node.started is None:
            node.started = node.finished
        node.records = records
        campaign.__dict__[node.name] = records
        if (
            campaign.stage_cache is not None
            and node.cache_state == "miss"
            and health.status == "success"
        ):
            campaign.stage_cache.store(node.name, records)
        health.records = len(records)
        campaign.stage_health[node.name] = health
        campaign._account_stage(
            node.name, len(records), node.cache_state, node.started, health
        )

    def _all_finalized(self) -> bool:
        return all(node.finalized for node in self._nodes.values())

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            if self._fleet is not None:
                # Borrow the fleet's persistent shared pool; the fleet
                # owns its lifecycle, _close_pool only detaches.
                self._pool = self._fleet.acquire_pool(self.campaign)
                return self._pool
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                context = multiprocessing.get_context("spawn")
            # Publish the built world for the fork to inherit (same
            # copy-on-write scheme as the barrier engine); no broadcast
            # barrier — streaming workers never receive deps.
            digest = engine_module.world_digest(self.campaign.config)
            engine_module._FORK_SHARED[digest] = (
                self.campaign.config,
                self.campaign.world,
            )
            try:
                self._pool = context.Pool(
                    processes=self.workers,
                    initializer=_init_worker,
                    initargs=(self.campaign.config, None),
                )
            finally:
                engine_module._FORK_SHARED.pop(digest, None)
        return self._pool

    def _close_pool(self, timeout: float = 10.0) -> None:
        pool = self._pool
        if pool is None:
            return
        self._pool = None
        if self._fleet is not None:
            return
        pool.close()
        workers = list(getattr(pool, "_pool", ()))
        deadline = time.monotonic() + timeout
        while any(p.is_alive() for p in workers) and time.monotonic() < deadline:
            time.sleep(0.02)
        if any(p.is_alive() for p in workers):
            pool.terminate()
        pool.join()

    # -- telemetry ---------------------------------------------------------
    def _record_telemetry(self, wall: float) -> None:
        metrics = self.campaign.metrics
        streamed = [
            node
            for node in self._nodes.values()
            if node.cache_state != "hit" and (node.total or 0) > 0
        ]
        busy = sum(
            (node.finished or 0.0) - (node.started or 0.0) for node in streamed
        )
        overlap = busy / wall if wall > 0 and streamed else 0.0
        metrics.counter("stream.stages", volatile=True).inc(len(streamed))
        metrics.counter("stream.tasks", volatile=True).inc(self._tasks_total)
        metrics.counter("stream.backpressure_stalls", volatile=True).inc(self._stalls)
        metrics.gauge("stream.queue_depth_max", volatile=True).set(self._queue_max)
        metrics.gauge("stream.inflight_max", volatile=True).set(self._inflight_max)
        metrics.gauge("stream.queue_limit", volatile=True).set(self._queue_limit)
        metrics.gauge("stream.wall_seconds", volatile=True).set(round(wall, 6))
        metrics.gauge("stream.overlap_ratio", volatile=True).set(round(overlap, 4))


def run_streaming(campaign, workers: Optional[int] = None, fleet=None) -> None:
    """Run every campaign stage through the streaming dataflow engine."""
    StreamEngine(campaign, workers, fleet=fleet).run()
