"""Sharded parallel execution of campaign scan stages."""

from repro.parallel.engine import ScanEngine

__all__ = ["ScanEngine"]
