"""Parallel execution of campaign scan stages.

Two engines share the worker plumbing: the barrier-synchronised
:class:`ScanEngine` (one stage at a time, interleaved permutation
shards) and the streaming :class:`StreamEngine` (record dataflow over
prefix-ordered chunks; see :mod:`repro.parallel.stream`).
"""

from repro.parallel.engine import ScanEngine
from repro.parallel.stream import StreamEngine, run_streaming

__all__ = ["ScanEngine", "StreamEngine", "run_streaming"]
