"""Cross-campaign fleet scheduler: one pool, shared world snapshots.

The repro's workloads are fleets of near-identical campaigns — a
datarate×latency matrix whose cells differ only in ``path_profile``,
and a longitudinal series whose weeks differ only in the grown world —
yet the sequential drivers rebuild the simulated Internet (~2.2 s of a
~3.4 s cold cell) and respawn the worker pool for every campaign.  The
fleet scheduler amortises both:

- **Shared world snapshots.**  The world-shaping configuration subset
  (:func:`repro.parallel.engine.world_key`) excludes fault/path
  profiles, so every matrix cell maps to one
  :func:`~repro.parallel.engine.world_digest`.  The fleet builds that
  world once, *pristine* (no profiles applied), publishes it in
  ``_FORK_SHARED`` under the :data:`PRISTINE` tag for pool forks to
  inherit copy-on-write, and **activates** it per cell: restore the
  pristine per-address conditions, reset fault/path state, then apply
  the cell's own fault and path profiles with the exact seeds a
  sequential run would use.  Activation is a pure function of the cell
  configuration, so records and ``metrics.json`` stay byte-identical
  to sequential runs (proven by ``repro conform --fleet``).
- **One persistent pool.**  All cells (and all longitudinal weeks)
  share a single fork pool.  Tasks are wrapped with the owning cell's
  configuration; each worker keeps an LRU of world replicas keyed by
  digest plus campaign replicas keyed by the full configuration, so
  dep-broadcast caches and warm crypto caches survive across cells and
  weeks while stale worlds are evicted.
- **Ordered commits, overlapped loads.**  :meth:`FleetScheduler.execute`
  runs up to ``jobs`` cells' scans concurrently but commits results on
  the calling thread in submission order — a single sqlite writer, so
  warehouse rows and ledger entries are byte-identical to sequential
  runs while cell *k*'s load overlaps cell *k+1*'s scans.

Determinism relies on two existing engine invariants: chunk/shard
boundaries never split one host's traffic, and per-host fault/path
state is a pure function of ``(seed, stage epoch, host traffic)`` —
so re-activating a world between tasks is invisible to the records.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.crypto.rand import derive_seed
from repro.parallel import engine as engine_module
from repro.parallel import stream as stream_module
from repro.parallel.engine import ScanEngine

__all__ = [
    "PRISTINE",
    "FleetScanEngine",
    "FleetScheduler",
    "fleet_pool_size",
]

# Tag marking a profile-free world snapshot in ``_FORK_SHARED``.  A
# plain string deliberately never compares equal to a campaign
# configuration, so non-fleet engines (whose ``_replica`` adoption
# guard is ``entry[0] == config``) ignore fleet snapshots and rebuild —
# a fleet world must be *activated* before use, which only fleet task
# wrappers know how to do.
PRISTINE = "fleet-pristine"

# How many distinct world snapshots (and campaign replicas) each worker
# keeps resident.  Matrix fleets use one world; longitudinal fleets use
# one per week, so a small LRU keeps the previous week warm for delta
# comparisons without letting a long series accumulate every world.
DEFAULT_MAX_WORLDS = 2
_MAX_CAMPAIGNS = 8

# Worker-process state (installed by the pool initializer).
_FLEET_MAX_WORLDS = DEFAULT_MAX_WORLDS
_FLEET_WORLDS: "OrderedDict[str, object]" = OrderedDict()
_FLEET_CAMPAIGNS: "OrderedDict[Tuple, object]" = OrderedDict()
_FLEET_BARRIER = None


def fleet_pool_size(jobs: int, workers: int) -> int:
    """Pool size for ``jobs`` concurrent cells of ``workers`` each.

    Mirrors the ``REPRO_WORKERS`` stderr warning: oversubscribing the
    machine is reported once and clamped deterministically to the CPU
    count, so a ``--fleet-jobs 8 --workers 8`` request on a laptop
    degrades predictably instead of thrashing.
    """
    want = max(1, jobs) * max(1, workers)
    cores = os.cpu_count() or 1
    if want > cores:
        print(
            f"warning: fleet jobs x workers = {want} oversubscribes"
            f" {cores} CPUs; clamping the shared pool to {cores}",
            file=sys.stderr,
        )
        return cores
    return want


def _attach_pristine(world) -> None:
    """Snapshot the world's pre-profile shaping state onto the world.

    Only the static per-address conditions need saving: fault *state*
    is lazily re-keyed per stage epoch and cleared by
    ``configure_faults``, so activation resets it explicitly instead.
    """
    net = world.network
    world._fleet_pristine = (
        dict(net._conditions),
        list(net._prefix_conditions),
        net._default_conditions,
    )


def _build_pristine_world(config):
    from repro.internet.generator import build_world

    world = build_world(
        week=config.week,
        scale=config.scale,
        seed=config.seed,
        fast_crypto=config.fast_crypto,
    )
    _attach_pristine(world)
    return world


def _activate_world(config, world) -> None:
    """Put ``world`` into exactly the state ``config``'s own build has.

    Restores the pristine conditions, clears fault/path shaping state,
    then applies the configuration's fault and path profiles with the
    same derived seeds :class:`~repro.experiments.campaign.Campaign`
    uses — so a shared snapshot serving profile A, then B, then A again
    replays byte-identical traffic each time.  Idempotent per
    configuration (keyed on the network), so per-task re-activation on
    a busy worker is a cheap comparison.
    """
    net = world.network
    key = (config.seed, config.fault_profile, config.path_profile)
    if getattr(net, "_fleet_active", None) == key:
        return
    pristine = world._fleet_pristine
    net._conditions = dict(pristine[0])
    net._prefix_conditions = list(pristine[1])
    net._default_conditions = pristine[2]
    net.configure_faults(0)
    net.configure_paths(0)
    net._fault_epoch = "root"
    addresses = [deployment.address for deployment in world.deployments]
    if config.fault_profile:
        from repro.netsim.faults import apply_profile, get_profile

        profile = get_profile(config.fault_profile)
        apply_profile(
            net, addresses, profile, derive_seed("faults", config.seed, profile.name)
        )
    if config.path_profile:
        from repro.netsim.paths import apply_path_profile, parse_path_spec

        spec = parse_path_spec(config.path_profile)
        apply_path_profile(
            net, addresses, spec, derive_seed("paths", config.seed, spec.canonical())
        )
    net._fleet_active = key


# -- worker side ---------------------------------------------------------------


def _fleet_init(max_worlds: int, barrier) -> None:
    global _FLEET_MAX_WORLDS, _FLEET_WORLDS, _FLEET_CAMPAIGNS, _FLEET_BARRIER
    _FLEET_MAX_WORLDS = max(1, max_worlds)
    _FLEET_WORLDS = OrderedDict()
    _FLEET_CAMPAIGNS = OrderedDict()
    _FLEET_BARRIER = barrier


def _acquire_world(config):
    """This worker's world replica for ``config``, by digest LRU.

    Adopts the fork-inherited pristine snapshot when the parent
    published one (matrix fleets — zero rebuilds); otherwise rebuilds
    deterministically from the configuration (longitudinal weeks forked
    before the week's world existed).  Evicting a world also evicts the
    campaign replicas bound to it, so a stale week can never leak into
    a later one through a cached replica.
    """
    digest = engine_module.world_digest(config)
    world = _FLEET_WORLDS.get(digest)
    if world is None:
        entry = engine_module._FORK_SHARED.get(digest)
        if entry is not None and entry[0] == PRISTINE:
            world = entry[1]
        else:
            world = _build_pristine_world(config)
        _FLEET_WORLDS[digest] = world
        while len(_FLEET_WORLDS) > _FLEET_MAX_WORLDS:
            _, evicted = _FLEET_WORLDS.popitem(last=False)
            for key in [
                key
                for key, campaign in _FLEET_CAMPAIGNS.items()
                if campaign._world is evicted
            ]:
                del _FLEET_CAMPAIGNS[key]
    else:
        _FLEET_WORLDS.move_to_end(digest)
    return world


def _fleet_replica(config):
    """The worker's campaign replica for ``config``, activated.

    Replicas are cached by the full configuration so dep broadcasts
    and computed stages stay resident across a cell's many tasks (and
    across repeat visits to the same cell), exactly like the dedicated
    pool's ``_replica``.
    """
    world = _acquire_world(config)
    key = config.cache_key()
    campaign = _FLEET_CAMPAIGNS.get(key)
    if campaign is None or campaign._world is not world:
        from repro.experiments.campaign import Campaign

        campaign = Campaign(config, world=world)
        _FLEET_CAMPAIGNS[key] = campaign
        while len(_FLEET_CAMPAIGNS) > _MAX_CAMPAIGNS:
            _FLEET_CAMPAIGNS.popitem(last=False)
    else:
        _FLEET_CAMPAIGNS.move_to_end(key)
    _activate_world(config, world)
    return campaign


def _fleet_stream_chunk(task):
    """Pool task: one streaming chunk, routed by campaign configuration."""
    config, inner = task
    return stream_module._compute_chunk_on(_fleet_replica(config), inner)


def _fleet_run_shard(task):
    """Pool task: one barrier-engine shard, routed by configuration."""
    config, inner = task
    return engine_module._run_shard_on(_fleet_replica(config), inner)


def _fleet_recv_deps(task):
    """Pool task: one dep-broadcast round, routed by configuration."""
    config, payload = task
    return engine_module._recv_deps_on(_fleet_replica(config), payload, _FLEET_BARRIER)


# -- parent side ---------------------------------------------------------------


class FleetScanEngine(ScanEngine):
    """A :class:`ScanEngine` facade bound to a fleet's shared pool.

    Task shaping (shard counts, dep broadcasts, merge order) follows
    the campaign's own ``workers`` so record and metric merging stays
    byte-identical to a dedicated engine; only *where* the tasks run
    changes.  Broadcasts go to every pool slot (the pool may be larger
    than one campaign's worker count), and ``close()`` merely detaches
    — the fleet owns the pool's lifecycle across campaigns.
    """

    def __init__(self, fleet: "FleetScheduler", campaign):
        super().__init__(campaign.config, campaign._workers, world=None)
        self._fleet = fleet

    def _ensure_pool(self):
        pool = self._fleet._ensure_pool()
        if self._pool is not pool:
            self._pool = pool
            self._sent_deps = set()
        return self._pool

    def close(self, timeout: float = 10.0) -> None:
        self._pool = None

    def _broadcast_payload(self, pool, payload: bytes) -> List[int]:
        tasks = [(self._config, payload)] * self._fleet.pool_size
        return pool.map(_fleet_recv_deps, tasks, chunksize=1)

    def _submit_shards(self, pool, tasks):
        wrapped = [(self._config, task) for task in tasks]
        return pool.imap_unordered(_fleet_run_shard, wrapped, chunksize=1)


class FleetScheduler:
    """Runs many campaigns against one pool and shared world snapshots.

    Two operating modes, chosen from the requested concurrency:

    - **in-process** (``jobs == 1`` and ``campaign_workers == 1``): no
      pool at all; cells run serially in the parent against the shared
      snapshot, activated between cells.  This is the pure
      world-amortisation mode — the right choice on small machines.
    - **pooled** (otherwise): one persistent fork pool of
      :func:`fleet_pool_size` workers serves every campaign; up to
      ``jobs`` cells scan concurrently while the parent commits results
      in submission order.  The parent's snapshot stays pristine —
      profiles are applied only to worker replicas — so concurrent
      cells can safely share one fork-inherited world.
    """

    def __init__(
        self,
        jobs: int = 1,
        campaign_workers: int = 1,
        max_worlds: int = DEFAULT_MAX_WORLDS,
    ):
        self.jobs = max(1, jobs)
        self.campaign_workers = max(1, campaign_workers)
        self.pooled = self.jobs > 1 or self.campaign_workers > 1
        self.pool_size = (
            fleet_pool_size(self.jobs, self.campaign_workers) if self.pooled else 0
        )
        self.max_worlds = max(1, max_worlds)
        self._worlds: "OrderedDict[str, object]" = OrderedDict()
        self._pool = None
        self._barrier = None
        self._lock = threading.Lock()
        # Telemetry (parent side; see docs/PERFORMANCE.md).
        self.world_builds = 0
        self.world_reuse_hits = 0
        self._pool_creations = 0
        self.scan_seconds = 0.0
        self.load_seconds = 0.0
        self.execute_seconds = 0.0
        self.cells_executed = 0

    # -- worlds ---------------------------------------------------------------
    def world_for(self, config):
        """The shared pristine world for ``config``'s world digest."""
        digest = engine_module.world_digest(config)
        world = self._worlds.get(digest)
        if world is None:
            world = _build_pristine_world(config)
            self._worlds[digest] = world
            self.world_builds += 1
            while len(self._worlds) > self.max_worlds:
                self._worlds.popitem(last=False)
        else:
            self._worlds.move_to_end(digest)
            self.world_reuse_hits += 1
        return world

    def cell_campaign(self, config, cache_dir=None):
        """A campaign bound to the fleet: shared world, shared pool.

        The campaign's world slot is pre-filled with the pristine
        snapshot, so its lazy builder (which would re-apply profiles)
        never runs; the profile gauges a sequential run records at
        world-build time are reproduced here by pure counting
        (:func:`repro.netsim.faults.profile_counts`), leaving the
        snapshot untouched.
        """
        from repro.experiments.campaign import Campaign

        world = self.world_for(config)
        campaign = Campaign(
            config,
            world=world,
            workers=self.campaign_workers,
            cache_dir=cache_dir,
            fleet=self if self.pooled else None,
        )
        self._set_profile_gauges(campaign, world)
        return campaign

    def _set_profile_gauges(self, campaign, world) -> None:
        config = campaign.config
        if config.fault_profile:
            from repro.netsim.faults import get_profile, profile_counts

            profile = get_profile(config.fault_profile)
            counts = profile_counts(
                [deployment.address for deployment in world.deployments],
                profile,
                derive_seed("faults", config.seed, profile.name),
            )
            for kind in sorted(counts):
                campaign.metrics.gauge("faults.hosts", fault=kind).set(counts[kind])
        if config.path_profile:
            from repro.netsim.paths import parse_path_spec

            spec = parse_path_spec(config.path_profile)
            # Path profiles shape the whole population (see
            # apply_path_profile), so the count is the deployment count.
            campaign.metrics.gauge("paths.hosts", profile=spec.name).set(
                len(world.deployments)
            )

    # -- pool -----------------------------------------------------------------
    def _ensure_pool(self):
        with self._lock:
            if self._pool is not None:
                return self._pool
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                context = multiprocessing.get_context("spawn")
            self._barrier = context.Barrier(self.pool_size)
            # Publish every resident pristine world for the fork to
            # inherit copy-on-write; the window closes right after
            # (children keep their fork-time copy of the registry).
            published = []
            for digest, world in self._worlds.items():
                if digest not in engine_module._FORK_SHARED:
                    engine_module._FORK_SHARED[digest] = (PRISTINE, world)
                    published.append(digest)
            try:
                self._pool = context.Pool(
                    processes=self.pool_size,
                    initializer=_fleet_init,
                    initargs=(self.max_worlds, self._barrier),
                )
            finally:
                for digest in published:
                    engine_module._FORK_SHARED.pop(digest, None)
            self._pool_creations += 1
            return self._pool

    @property
    def pool_respawns(self) -> int:
        """Pool creations beyond the first (the fleet contract is 0)."""
        return max(0, self._pool_creations - 1)

    def acquire_pool(self, campaign):
        """Stream-engine hook: borrow the shared pool for a campaign."""
        return self._ensure_pool()

    def scan_engine(self, campaign) -> FleetScanEngine:
        """Campaign hook: a barrier engine bound to the shared pool."""
        return FleetScanEngine(self, campaign)

    def stream_task(self, config, task):
        """Stream-engine hook: wrap a chunk task with its routing config."""
        return _fleet_stream_chunk, ((config, task),)

    # -- execution ------------------------------------------------------------
    def execute(
        self,
        campaigns: Sequence,
        commit: Callable[[int, object], object],
    ) -> List[object]:
        """Scan every campaign; commit each in submission order.

        ``commit(index, campaign)`` runs on the calling thread — the
        single writer — strictly in list order, so databases, ledgers
        and logs are ordered exactly as a sequential driver's.  In
        pooled mode up to ``jobs`` campaigns scan concurrently and
        commit *k* overlaps scans *k+1 … k+jobs*; in-process mode
        activates the shared world per cell and runs serially.
        """
        start = time.perf_counter()
        try:
            if not self.pooled:
                return self._execute_serial(campaigns, commit)
            return self._execute_pooled(campaigns, commit)
        finally:
            self.execute_seconds += time.perf_counter() - start
            self.cells_executed += len(campaigns)

    def _execute_serial(self, campaigns, commit):
        results = []
        for index, campaign in enumerate(campaigns):
            scan_start = time.perf_counter()
            _activate_world(campaign.config, campaign._world)
            campaign.run_all_stages()
            self.scan_seconds += time.perf_counter() - scan_start
            load_start = time.perf_counter()
            results.append(commit(index, campaign))
            self.load_seconds += time.perf_counter() - load_start
        return results

    def _execute_pooled(self, campaigns, commit):
        self._ensure_pool()
        results = []
        pending = deque()
        iterator = iter(enumerate(campaigns))

        def scan(campaign):
            scan_start = time.perf_counter()
            campaign.run_all_stages()
            return time.perf_counter() - scan_start

        with ThreadPoolExecutor(max_workers=self.jobs) as executor:

            def submit_next() -> bool:
                try:
                    index, campaign = next(iterator)
                except StopIteration:
                    return False
                pending.append((index, campaign, executor.submit(scan, campaign)))
                return True

            # Keep jobs+1 cells in flight: jobs scanning plus the one
            # whose commit the main thread is writing.
            for _ in range(self.jobs + 1):
                if not submit_next():
                    break
            while pending:
                index, campaign, future = pending.popleft()
                self.scan_seconds += future.result()
                load_start = time.perf_counter()
                results.append(commit(index, campaign))
                self.load_seconds += time.perf_counter() - load_start
                submit_next()
        return results

    # -- telemetry / lifecycle -------------------------------------------------
    def telemetry(self) -> Dict[str, object]:
        wall = self.execute_seconds
        overlap = (
            (self.scan_seconds + self.load_seconds) / wall if wall > 0 else 0.0
        )
        return {
            "jobs": self.jobs,
            "campaign_workers": self.campaign_workers,
            "pooled": self.pooled,
            "pool_size": self.pool_size,
            "cells_executed": self.cells_executed,
            "world_builds": self.world_builds,
            "world_reuse_hits": self.world_reuse_hits,
            "pool_respawns": self.pool_respawns,
            "scan_seconds": round(self.scan_seconds, 6),
            "load_seconds": round(self.load_seconds, 6),
            "execute_seconds": round(self.execute_seconds, 6),
            "overlap_ratio": round(overlap, 4),
        }

    def close(self, timeout: float = 10.0) -> None:
        """Shut the shared pool down (graceful drain, then terminate)."""
        pool = self._pool
        self._pool = None
        if pool is None:
            return
        pool.close()
        workers = list(getattr(pool, "_pool", ()))
        deadline = time.monotonic() + timeout
        while any(p.is_alive() for p in workers) and time.monotonic() < deadline:
            time.sleep(0.02)
        if any(p.is_alive() for p in workers):
            pool.terminate()
        pool.join()

    def __enter__(self) -> "FleetScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
