"""Scan reports: the human side of the observability layer.

``repro report`` runs (or replays, warm-cache) a weekly campaign and
renders what an operator of the paper's 14-week measurement would want
on a dashboard:

- a **per-stage table** — targets attempted, records produced, wall
  time, stage-cache hit/miss — in canonical execution order,
- the **discovery summary** (paper Table 1: addresses per method),
  reproduced through the existing analysis pipeline so the report can
  never drift from the published artefacts,
- the **stateful QUIC outcome taxonomy** (paper Table 3: success /
  timeout / crypto error 0x128 / version mismatch / other) plus the
  response-type tallies (version negotiations, Retries,
  CONNECTION_CLOSE error codes) from the metric counters,
- the **TLS-over-TCP outcome mix** and Alt-Svc yield (feeding Table 1's
  ALT-SVC rows),
- wire/cache totals: probes sent per family, datagrams per QUIC
  connection, cache hits/misses.

Next to the human-readable text, :func:`metrics_document` produces the
machine-readable ``metrics.json``: the campaign configuration plus the
registry snapshot *without volatile metrics* — a serial and a parallel
run of the same configuration therefore serialise to byte-identical
documents (asserted in ``tests/test_observability.py``).  The default
location is next to the persistent stage cache entry, so a cached
campaign carries its own telemetry.

See ``docs/OBSERVABILITY.md`` for the full metric-name schema and how
each section maps onto the paper's tables.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.analysis.tables import render_table
from repro.observability.metrics import parse_metric_key
from repro.scanners.results import QScanOutcome

__all__ = [
    "build_scan_report",
    "build_resilience_report",
    "metrics_document",
    "render_metrics_json",
    "write_metrics_json",
    "default_metrics_path",
    "stage_targets",
]

# v2: the config block gained fault_profile and retry.
METRICS_FORMAT_VERSION = 2

# Outcome column order follows paper Table 3.
_T3_OUTCOMES = (
    QScanOutcome.SUCCESS,
    QScanOutcome.TIMEOUT,
    QScanOutcome.CRYPTO_ERROR_0X128,
    QScanOutcome.VERSION_MISMATCH,
    QScanOutcome.OTHER,
)

_QSCAN_STAGES = (
    ("qscan_nosni_v4", "no SNI", "IPv4"),
    ("qscan_sni_v4", "SNI", "IPv4"),
    ("qscan_nosni_v6", "no SNI", "IPv6"),
    ("qscan_sni_v6", "SNI", "IPv6"),
)


def stage_targets(campaign) -> Dict[str, int]:
    """Targets attempted per stage (identical in serial/parallel runs)."""
    targets = {
        "dns_records": sum(
            len(domains) for domains in campaign.world.input_lists.lists.values()
        ),
        "zmap_v4": campaign.world.ipv4_space.num_addresses,
        "zmap_v6": len(campaign.ipv6_scan_input),
        "syn_v4": campaign.world.ipv4_space.num_addresses,
        "syn_v6": len(campaign.ipv6_scan_input),
        "goscanner_nosni_v4": len(campaign.syn_v4),
        "goscanner_nosni_v6": len(campaign.syn_v6),
        "goscanner_sni_v4": len(campaign._sni_scan_items(4)),
        "goscanner_sni_v6": len(campaign._sni_scan_items(6)),
        "qscan_nosni_v4": len(campaign._zmap_compatible(campaign.zmap_v4)),
        "qscan_nosni_v6": len(campaign._zmap_compatible(campaign.zmap_v6)),
        "qscan_sni_v4": len(campaign._sorted_sni_targets(4)),
        "qscan_sni_v6": len(campaign._sorted_sni_targets(6)),
    }
    return targets


def _stage_rows(campaign) -> List[Tuple]:
    from repro.experiments.campaign import _STAGE_ORDER

    targets = stage_targets(campaign)
    rows = []
    for stage in ("dns_records",) + _STAGE_ORDER:
        records = campaign.metrics.counter_value("campaign.stage_records", stage=stage)
        gauge = campaign.metrics.get(f"campaign.stage_seconds{{stage={stage}}}")
        seconds = gauge.value if gauge is not None else None
        hits = campaign.metrics.counter_value(
            "campaign.stage_cache", result="hit", stage=stage
        )
        misses = campaign.metrics.counter_value(
            "campaign.stage_cache", result="miss", stage=stage
        )
        if hits or misses:
            cache = "hit" if hits else "miss"
        else:
            cache = "-"
        rows.append(
            (
                stage,
                targets.get(stage, "-"),
                records,
                f"{seconds:.3f}" if seconds is not None else "-",
                cache,
            )
        )
    return rows


def _qscan_outcome_rows(campaign) -> List[Tuple]:
    """Table-3-shaped outcome percentages, computed from the records."""
    rows = []
    for stage, mode, family in _QSCAN_STAGES:
        records = getattr(campaign, stage)
        total = len(records)
        counts = {outcome: 0 for outcome in _T3_OUTCOMES}
        for record in records:
            counts[record.outcome] += 1
        row: List[object] = [mode, family, total]
        for outcome in _T3_OUTCOMES:
            share = 100.0 * counts[outcome] / total if total else 0.0
            row.append(f"{counts[outcome]} ({share:.1f}%)")
        rows.append(tuple(row))
    return rows


def _counter_section(campaign, prefix: str) -> Dict[str, int]:
    """All counters under ``prefix.`` with their label suffix as key."""
    snapshot = campaign.metrics.snapshot()["counters"]
    section = {}
    for key, value in snapshot.items():
        name, labels = parse_metric_key(key)
        if name.startswith(prefix + ".") or name == prefix:
            label = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            short = name[len(prefix) + 1 :] if name != prefix else name
            section[f"{short}{{{label}}}" if label else short] = value
    return section


def _response_type_rows(campaign) -> List[Tuple[str, int]]:
    """VN / Retry / handshake-ok / timeout / CONNECTION_CLOSE tallies."""
    metrics = campaign.metrics
    rows = [
        (
            "handshake ok",
            metrics.counter_value("quic.handshakes", outcome="success"),
        ),
        (
            "timeout",
            metrics.counter_value("quic.handshakes", outcome="timeout"),
        ),
        (
            "version negotiation seen",
            metrics.counter_value("quic.version_negotiation_seen"),
        ),
        ("retry received", metrics.counter_value("quic.retry_received")),
    ]
    for key, value in campaign.metrics.snapshot()["counters"].items():
        name, labels = parse_metric_key(key)
        if name == "quic.close_codes":
            rows.append((f"CONNECTION_CLOSE {labels.get('code', '?')}", value))
    return rows


def build_scan_report(campaign, total_seconds: Optional[float] = None) -> str:
    """Render the full human-readable scan report.

    Assumes the campaign's stages have already run (e.g. via
    ``campaign.run_all_stages()``); accessing them here would trigger
    the scans anyway, but timing/caching columns are only meaningful
    for an executed campaign.
    """
    from repro.experiments.tables import table1

    config = campaign.config
    lines: List[str] = []
    lines.append(
        f"scan report — week {config.week}, seed {config.seed}, "
        f"scale 1:{config.scale.addresses} (ases 1:{config.scale.ases}, "
        f"domains 1:{config.scale.domains})"
    )
    if total_seconds is not None:
        lines.append(f"campaign wall time: {total_seconds:.3f}s")
    lines.append("")

    # -- per-stage execution --------------------------------------------------
    lines.append(
        render_table(
            ("stage", "targets", "records", "wall s", "cache"),
            _stage_rows(campaign),
            title="stage execution (canonical order)",
        )
    )
    cache = campaign.stage_cache
    if cache is not None:
        cache_line = (
            f"stage cache: {cache.hits} hits / {cache.misses} misses "
            f"({cache.directory})"
        )
        if cache.corrupt_discarded:
            cache_line += f", {cache.corrupt_discarded} corrupt entries discarded"
        if cache.store_failures:
            cache_line += f", {cache.store_failures} store failures"
        lines.append(cache_line)
    unhealthy = [
        health
        for health in campaign.stage_health.values()
        if health.status != "success"
    ]
    for health in unhealthy:
        lines.append(
            f"stage health: {health.stage} {health.status} "
            f"({health.shards_failed}/{health.shards} shards failed): "
            f"{health.error}"
        )
    lines.append("")

    # -- discovery summary (paper Table 1) ------------------------------------
    # Reuses the analysis pipeline so the report equals the artefact.
    lines.append(table1(campaign).render())
    lines.append("")

    # -- stateful QUIC outcomes (paper Table 3/4 shape) -----------------------
    headers = ("scan", "family", "targets") + tuple(
        outcome.value for outcome in _T3_OUTCOMES
    )
    lines.append(
        render_table(
            headers,
            _qscan_outcome_rows(campaign),
            title="stateful QUIC handshake outcomes (Table 3 taxonomy)",
        )
    )
    lines.append("")
    lines.append(
        render_table(
            ("response type", "count"),
            _response_type_rows(campaign),
            title="QUIC response types",
        )
    )
    lines.append("")

    # -- TLS over TCP ---------------------------------------------------------
    tls_rows = sorted(_counter_section(campaign, "tls").items())
    if tls_rows:
        lines.append(
            render_table(
                ("tls counter", "value"),
                tls_rows,
                title="stateful TLS-over-TCP (Alt-Svc harvest feeding Table 1)",
            )
        )
        lines.append("")

    # -- wire totals ----------------------------------------------------------
    wire_rows = sorted(_counter_section(campaign, "zmap").items())
    if wire_rows:
        lines.append(
            render_table(
                ("stateless probe counter", "value"),
                wire_rows,
                title="stateless sweeps",
            )
        )
    rtt = campaign.metrics.get("quic.handshake_rtt_seconds")
    if rtt is not None and rtt.count:
        lines.append(
            f"QUIC handshake RTT (simulated): n={rtt.count} "
            f"mean={rtt.mean:.4f}s min={rtt.min:.4f}s max={rtt.max:.4f}s"
        )
    datagrams = campaign.metrics.get("quic.datagrams_per_connection")
    if datagrams is not None and datagrams.count:
        lines.append(
            f"datagrams per QUIC connection: n={datagrams.count} "
            f"mean={datagrams.mean:.2f} max={datagrams.max:.0f}"
        )
    tracer = campaign.tracer
    if tracer.enabled:
        lines.append(
            f"trace: {len(tracer.events)} events buffered "
            f"(sample rate {tracer.sample_rate}, dropped {tracer.dropped})"
        )
    return "\n".join(lines)


def build_resilience_report(campaign, total_seconds: Optional[float] = None) -> str:
    """Render the ``repro chaos`` resilience report.

    Summarises how a campaign behaved under an active fault profile:
    per-stage health (success/degraded/failed), the faults the network
    actually injected, the scanners' retry/give-up tallies, and the
    resulting Table-3 outcome mix — ending with a one-line verdict
    matching the CLI exit code (nonzero only on total stage failure).
    """
    config = campaign.config
    lines: List[str] = []
    lines.append(
        f"resilience report — profile {config.fault_profile or 'none'}, "
        f"week {config.week}, seed {config.seed}, "
        f"retry attempts {config.retry.attempts}"
    )
    if total_seconds is not None:
        lines.append(f"campaign wall time: {total_seconds:.3f}s")
    lines.append("")

    # -- fault host assignment ------------------------------------------------
    fault_hosts = []
    for key, gauge in sorted(campaign.metrics.snapshot()["gauges"].items()):
        name, labels = parse_metric_key(key)
        if name == "faults.hosts":
            fault_hosts.append((labels.get("fault", "?"), int(gauge)))
    if fault_hosts:
        lines.append(
            render_table(
                ("fault", "hosts"), fault_hosts, title="faulted hosts by kind"
            )
        )
        lines.append("")

    # -- per-stage health -----------------------------------------------------
    health_rows = []
    for name, health in campaign.stage_health.items():
        health_rows.append(
            (
                name,
                health.status,
                health.records,
                f"{health.shards - health.shards_failed}/{health.shards}",
                health.error or "-",
            )
        )
    lines.append(
        render_table(
            ("stage", "status", "records", "shards ok", "error"),
            health_rows,
            title="stage health",
        )
    )
    lines.append("")

    # -- injected faults ------------------------------------------------------
    injected = sorted(_counter_section(campaign, "faults").items())
    if injected:
        lines.append(
            render_table(
                ("fault counter", "value"), injected, title="faults injected"
            )
        )
        lines.append("")

    # -- retries and give-ups -------------------------------------------------
    retry_rows = []
    for key, value in sorted(campaign.metrics.snapshot()["counters"].items()):
        name, _ = parse_metric_key(key)
        if name.endswith(".retries") or name.endswith(".giveups"):
            retry_rows.append((key, value))
    if retry_rows:
        lines.append(
            render_table(
                ("retry counter", "value"), retry_rows, title="retries and give-ups"
            )
        )
        lines.append("")

    # -- outcome mix under faults ---------------------------------------------
    headers = ("scan", "family", "targets") + tuple(
        outcome.value for outcome in _T3_OUTCOMES
    )
    lines.append(
        render_table(
            headers,
            _qscan_outcome_rows(campaign),
            title="stateful QUIC handshake outcomes (Table 3 taxonomy)",
        )
    )
    lines.append("")

    failed = campaign.failed_stages()
    degraded = campaign.degraded_stages()
    if failed:
        lines.append(f"verdict: FAILED — stages with no output: {', '.join(failed)}")
    elif degraded:
        lines.append(
            f"verdict: DEGRADED — partial stages: {', '.join(degraded)} "
            "(campaign completed)"
        )
    else:
        lines.append("verdict: OK — every stage completed under the fault profile")
    return "\n".join(lines)


def metrics_document(campaign) -> Dict:
    """The deterministic ``metrics.json`` document for a campaign.

    Volatile metrics (wall times, host facts) are excluded, so runs of
    the same configuration — serial or parallel, any worker count —
    produce identical documents.
    """
    config = campaign.config
    return {
        "format": METRICS_FORMAT_VERSION,
        "config": {
            "week": config.week,
            "seed": config.seed,
            "scale": {
                "addresses": config.scale.addresses,
                "ases": config.scale.ases,
                "domains": config.scale.domains,
                "reference": config.scale.reference,
            },
            "fast_crypto": config.fast_crypto,
            "max_domains_per_address": config.max_domains_per_address,
            "qscanner_versions": [f"0x{v:08x}" for v in config.qscanner_versions],
            "scan_timeout": config.scan_timeout,
            "fault_profile": config.fault_profile,
            "retry": {
                "attempts": config.retry.attempts,
                "base_delay": config.retry.base_delay,
                "multiplier": config.retry.multiplier,
                "max_delay": config.retry.max_delay,
                "jitter": config.retry.jitter,
                "deadline": config.retry.deadline,
            },
        },
        "metrics": campaign.metrics.snapshot(include_volatile=False),
    }


def render_metrics_json(campaign) -> str:
    """Canonical serialisation (sorted keys, stable indentation)."""
    return json.dumps(metrics_document(campaign), indent=2, sort_keys=True) + "\n"


def default_metrics_path(campaign) -> Path:
    """Next to the stage cache when there is one, else the working dir."""
    cache = campaign.stage_cache
    if cache is not None:
        return cache.directory / "metrics.json"
    return Path("metrics.json")


def write_metrics_json(campaign, path: Optional[Path] = None) -> Path:
    """Write ``metrics.json``; returns the path written."""
    path = Path(path) if path is not None else default_metrics_path(campaign)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_metrics_json(campaign))
    return path
