"""Dependency-free metrics primitives for the scan pipeline.

A :class:`MetricsRegistry` holds three metric kinds behind
Prometheus-style string keys (``name{label=value,...}``):

- :class:`Counter` — monotonically increasing integers (probes sent,
  handshake outcomes, cache hits),
- :class:`Gauge` — last-written values (stage target counts, wall
  times); gauges may be marked *volatile* when they carry wall-clock
  or host-dependent readings that must never enter the deterministic
  ``metrics.json`` artefact,
- :class:`Histogram` — fixed-bucket distributions (handshake RTTs,
  datagrams per connection).

Two design constraints shape the implementation:

1. **Hot-path cost.**  A counter increment is one integer addition on
   a pre-resolved handle; scanners resolve their handles once per
   stage (or batch per-loop tallies locally and flush at the end), so
   the stateless sweeps pay near zero per probe.
2. **Mergeable snapshots.**  The sharded parallel engine runs scan
   stages in worker processes; each worker snapshots its local
   registry and the parent merges the snapshots in shard order.
   Merging is associative and commutative for every kind — counters
   and histogram buckets are integer sums, histogram value sums are
   accumulated in integer nanos (float addition order would otherwise
   leak into the bytes of ``metrics.json``), and min/max are
   order-independent — so a parallel campaign produces *byte-identical*
   merged metrics to a serial run of the same configuration
   (``tests/test_observability.py``).

The module-level *current registry* (:func:`get_metrics` /
:func:`use_metrics`) lets deeply nested code record metrics without
threading a registry through every constructor; the campaign runner
installs its own registry around each stage, and worker processes
install a fresh one per task.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_COUNT_BUCKETS",
    "metric_key",
    "parse_metric_key",
    "get_metrics",
    "set_metrics",
    "use_metrics",
]

# Histogram value sums are accumulated in integer nanos so that merges
# are exact regardless of observation order.
_NANOS = 1_000_000_000

# Upper bucket bounds (seconds) for handshake/stage durations; the
# final implicit bucket is +inf.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

# Upper bucket bounds for small-integer distributions (datagrams or
# packets per connection).
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 64)


def metric_key(name: str, labels: Optional[Dict[str, object]] = None) -> str:
    """Canonical string key: ``name`` or ``name{k=v,...}``, labels sorted."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`metric_key` (label values come back as strings)."""
    if "{" not in key:
        return key, {}
    name, _, rest = key.partition("{")
    labels: Dict[str, str] = {}
    for pair in rest.rstrip("}").split(","):
        if pair:
            label, _, value = pair.partition("=")
            labels[label] = value
    return name, labels


class Counter:
    """A monotonically increasing integer metric.

    Counters may be marked *volatile* when they measure host-dependent
    transport behaviour (bytes pickled to workers, broadcast cache
    hits) that varies with worker count and so must stay out of the
    deterministic ``metrics.json`` artefact.
    """

    kind = "counter"
    __slots__ = ("key", "value", "volatile")

    def __init__(self, key: str, volatile: bool = False):
        self.key = key
        self.value = 0
        self.volatile = volatile

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins value; merges take the maximum."""

    kind = "gauge"
    __slots__ = ("key", "value", "volatile")

    def __init__(self, key: str, volatile: bool = False):
        self.key = key
        self.value: Optional[object] = None
        self.volatile = volatile

    def set(self, value) -> None:
        self.value = value


class Histogram:
    """A fixed-bucket distribution with exact (integer) merge state."""

    kind = "histogram"
    __slots__ = ("key", "bounds", "counts", "count", "sum_nanos", "min", "max")

    def __init__(self, key: str, bounds: Sequence[float]):
        self.key = key
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must be sorted: {bounds!r}")
        # counts[i] counts values <= bounds[i]; the final slot is +inf.
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum_nanos = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum_nanos += round(value * _NANOS)
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def sum(self) -> float:
        """The (nanos-quantized) sum of observed values."""
        return self.sum_nanos / _NANOS

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None


class MetricsRegistry:
    """A flat collection of metrics with mergeable snapshots."""

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def clear(self) -> None:
        self._metrics.clear()

    # -- handle accessors (get-or-create) -----------------------------------
    def _resolve(self, key: str, kind: str, factory):
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = factory()
        elif metric.kind != kind:
            raise TypeError(f"metric {key!r} is a {metric.kind}, not a {kind}")
        return metric

    def counter(self, name: str, volatile: bool = False, **labels) -> Counter:
        key = metric_key(name, labels)
        return self._resolve(key, "counter", lambda: Counter(key, volatile=volatile))

    def gauge(self, name: str, volatile: bool = False, **labels) -> Gauge:
        key = metric_key(name, labels)
        return self._resolve(key, "gauge", lambda: Gauge(key, volatile=volatile))

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS, **labels
    ) -> Histogram:
        key = metric_key(name, labels)
        metric = self._resolve(key, "histogram", lambda: Histogram(key, buckets))
        if metric.bounds != tuple(buckets):
            raise ValueError(f"histogram {key!r} re-registered with different buckets")
        return metric

    def get(self, key: str):
        """Look up a metric by its canonical string key (or None)."""
        return self._metrics.get(key)

    def counter_value(self, name: str, **labels) -> int:
        metric = self._metrics.get(metric_key(name, labels))
        return metric.value if metric is not None and metric.kind == "counter" else 0

    # -- snapshots -----------------------------------------------------------
    def snapshot(self, include_volatile: bool = True) -> Dict:
        """A plain-dict, JSON-able view of every metric (keys sorted).

        ``include_volatile=False`` drops metrics flagged volatile —
        the deterministic view written to ``metrics.json``.
        """
        counters: Dict[str, int] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, Dict] = {}
        volatile: List[str] = []
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            if getattr(metric, "volatile", False):
                if not include_volatile:
                    continue
                volatile.append(key)
            if metric.kind == "counter":
                counters[key] = metric.value
            elif metric.kind == "gauge":
                gauges[key] = metric.value
            else:
                histograms[key] = {
                    "buckets": list(metric.bounds),
                    "counts": list(metric.counts),
                    "count": metric.count,
                    "sum_nanos": metric.sum_nanos,
                    "min": metric.min,
                    "max": metric.max,
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "volatile": volatile,
        }

    def merge_snapshot(self, snapshot: Dict) -> None:
        """Fold a snapshot into this registry (associative, commutative).

        Counters and histogram state add; gauges keep the maximum of
        both sides (shard workers are expected to leave gauges to the
        parent, so this only matters for ties).
        """
        volatile = set(snapshot.get("volatile", ()))
        for key, value in snapshot.get("counters", {}).items():
            name, labels = parse_metric_key(key)
            self.counter(name, volatile=key in volatile, **labels).inc(value)
        for key, value in snapshot.get("gauges", {}).items():
            name, labels = parse_metric_key(key)
            gauge = self.gauge(name, volatile=key in volatile, **labels)
            if gauge.value is None or (value is not None and value > gauge.value):
                gauge.set(value)
        for key, state in snapshot.get("histograms", {}).items():
            name, labels = parse_metric_key(key)
            histogram = self.histogram(name, buckets=state["buckets"], **labels)
            histogram.counts = [
                mine + theirs for mine, theirs in zip(histogram.counts, state["counts"])
            ]
            histogram.count += state["count"]
            histogram.sum_nanos += state["sum_nanos"]
            for side, pick in (("min", min), ("max", max)):
                theirs = state[side]
                if theirs is not None:
                    mine = getattr(histogram, side)
                    setattr(histogram, side, theirs if mine is None else pick(mine, theirs))


# -- current-registry context -------------------------------------------------

_DEFAULT_REGISTRY = MetricsRegistry()
# A ContextVar, not a module global: the fleet scheduler runs several
# campaigns' parent-side stages on concurrent threads, and each thread
# must see only its own campaign's registry.
_CURRENT: "ContextVar[MetricsRegistry]" = ContextVar(
    "repro_metrics", default=_DEFAULT_REGISTRY
)


def get_metrics() -> MetricsRegistry:
    """The registry instrumented code records into right now."""
    return _CURRENT.get()


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as current; returns the previous one."""
    previous = _CURRENT.get()
    _CURRENT.set(registry)
    return previous


@contextmanager
def use_metrics(registry: MetricsRegistry):
    """Scoped :func:`set_metrics` (the campaign wraps each stage in this)."""
    previous = set_metrics(registry)
    try:
        yield registry
    finally:
        set_metrics(previous)
