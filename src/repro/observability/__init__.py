"""Campaign observability: metrics, event tracing, scan reports.

The measurement pipeline's own telemetry is a first-class artefact —
the paper's evaluation is built on exactly this kind of bookkeeping
(targets per discovery method, handshake failure taxonomies, success
timelines).  This package provides it in three layers:

- :mod:`repro.observability.metrics` — counters, gauges and
  fixed-bucket histograms with snapshots that merge exactly across
  the :mod:`repro.parallel` worker pool,
- :mod:`repro.observability.tracing` — deterministic-sampled,
  span-style structured events dumped as JSONL,
- :mod:`repro.observability.report` — the ``repro report`` renderer:
  a human-readable per-stage scan report plus the machine-readable
  ``metrics.json`` written next to the stage cache.

See ``docs/OBSERVABILITY.md`` for the metric name schema and how to
read a report against the paper's Tables 1/3/4.
"""

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    metric_key,
    parse_metric_key,
    set_metrics,
    use_metrics,
)
from repro.observability.tracing import EventTracer, get_tracer, set_tracer, use_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "EventTracer",
    "metric_key",
    "parse_metric_key",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]
