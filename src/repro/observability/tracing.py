"""Structured event tracing for the scan pipeline.

An :class:`EventTracer` records span-style events — ``scan.stage``,
``quic.handshake``, ``tls.handshake`` — with free-form tags (outcome
classes, error codes, record counts).  Traces are an *operator*
artefact: they carry wall-clock durations and are therefore never part
of the deterministic ``metrics.json`` (see
:mod:`repro.observability.metrics` for the deterministic layer).

Sampling is deterministic, not random: the decision for the *n*-th
event of a given name hashes ``"name:n"`` (CRC-32) against the sample
rate, so the same tracer configuration over the same event sequence
always keeps the same subset — re-running a campaign with tracing
enabled yields comparable traces, and tests can assert on sampling
exactly.  A rate of ``0.0`` (the default) short-circuits to a shared
no-op span, keeping disabled tracing free on the hot path.

Traces dump as JSONL (one event object per line) via
:func:`EventTracer.dump_jsonl`; the ``repro report --trace`` flag
wires this up end to end.  In sharded parallel runs each worker
traces into a fresh tracer and the parent appends the drained events
in shard order.
"""

from __future__ import annotations

import json
import time
import zlib
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, List, Optional

__all__ = ["EventTracer", "get_tracer", "set_tracer", "use_tracer"]

_HASH_SPACE = float(2**32)


class _NullSpan:
    """The no-op span returned for unsampled (or disabled) events."""

    __slots__ = ()

    def tag(self, **_tags) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A sampled span: tags accumulate, duration closes on exit."""

    __slots__ = ("_tracer", "name", "seq", "tags", "_start")

    def __init__(self, tracer: "EventTracer", name: str, seq: int, tags: Dict):
        self._tracer = tracer
        self.name = name
        self.seq = seq
        self.tags = tags
        self._start = time.perf_counter()

    def tag(self, **tags) -> None:
        self.tags.update(tags)

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        if exc_type is not None:
            self.tags.setdefault("error", exc_type.__name__)
        self._tracer._record(
            self.name,
            self.seq,
            self.tags,
            wall_ms=round((time.perf_counter() - self._start) * 1000.0, 3),
        )
        return False


class EventTracer:
    """A sampling, bounded, JSONL-dumpable event buffer."""

    def __init__(self, sample_rate: float = 0.0, max_events: int = 100_000):
        self.sample_rate = float(sample_rate)
        self.max_events = max_events
        self.dropped = 0
        self._events: List[Dict] = []
        self._sequences: Dict[str, int] = {}

    @property
    def enabled(self) -> bool:
        return self.sample_rate > 0.0

    @property
    def events(self) -> List[Dict]:
        return self._events

    def _sampled(self, name: str) -> Optional[int]:
        """The event's per-name sequence number if kept, else None."""
        seq = self._sequences.get(name, 0)
        self._sequences[name] = seq + 1
        if self.sample_rate >= 1.0:
            return seq
        digest = zlib.crc32(f"{name}:{seq}".encode())
        return seq if digest / _HASH_SPACE < self.sample_rate else None

    def _record(self, name: str, seq: int, tags: Dict, wall_ms: Optional[float] = None) -> None:
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        event: Dict = {"name": name, "seq": seq}
        if wall_ms is not None:
            event["wall_ms"] = wall_ms
        if tags:
            event["tags"] = tags
        self._events.append(event)

    # -- recording API -------------------------------------------------------
    def span(self, name: str, **tags):
        """A context manager timing one operation; tags may be added inside."""
        if not self.enabled:
            return _NULL_SPAN
        seq = self._sampled(name)
        if seq is None:
            return _NULL_SPAN
        return _Span(self, name, seq, dict(tags))

    def event(self, name: str, **tags) -> None:
        """A point event (no duration)."""
        if not self.enabled:
            return
        seq = self._sampled(name)
        if seq is not None:
            self._record(name, seq, dict(tags))

    # -- buffer management ---------------------------------------------------
    def drain(self) -> List[Dict]:
        """Remove and return the buffered events (worker → parent hand-off)."""
        events, self._events = self._events, []
        return events

    def extend(self, events: List[Dict]) -> None:
        """Append already-recorded events (parent side of the hand-off)."""
        room = self.max_events - len(self._events)
        if room < len(events):
            self.dropped += len(events) - max(0, room)
        self._events.extend(events[: max(0, room)])

    def dump_jsonl(self, path) -> int:
        """Write one JSON object per line; returns the event count."""
        with open(path, "w", encoding="utf-8") as stream:
            for event in self._events:
                stream.write(json.dumps(event, sort_keys=True) + "\n")
        return len(self._events)


# -- current-tracer context ----------------------------------------------------

_DEFAULT_TRACER = EventTracer(0.0)
# A ContextVar for the same reason as the metrics registry: concurrent
# fleet campaign threads each need their own current tracer.
_CURRENT: "ContextVar[EventTracer]" = ContextVar(
    "repro_tracer", default=_DEFAULT_TRACER
)


def get_tracer() -> EventTracer:
    """The tracer instrumented code records into right now."""
    return _CURRENT.get()


def set_tracer(tracer: EventTracer) -> EventTracer:
    """Install ``tracer`` as current; returns the previous one."""
    previous = _CURRENT.get()
    _CURRENT.set(tracer)
    return previous


@contextmanager
def use_tracer(tracer: EventTracer):
    """Scoped :func:`set_tracer`."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
