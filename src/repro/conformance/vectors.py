"""Golden wire-format vectors: the encode/decode ground truth.

Every vector pins one encoder or decoder to bytes taken from a
published specification — RFC 9001 Appendix A (Initial AEAD, Retry
integrity tag, ChaCha20-Poly1305 short header), RFC 9000 Appendix A
(varints) and §18 (transport parameters, re-keyed from the A.2
ClientHello), RFC 7838 (Alt-Svc), RFC 9204 (QPACK), and the SVCB/HTTPS
draft — or to a regression input a fuzzing run once surfaced.  The
registry asserts both directions: encoding produces *exactly* those
bytes, and decoding those bytes recovers *exactly* those values.

A vector is a named zero-argument callable that raises
``AssertionError`` (or any exception) on mismatch; :func:`run_vectors`
executes the whole corpus, feeds ``conform.vectors_ok`` /
``conform.vectors_fail`` into a :class:`MetricsRegistry`, and returns
the failures.  ``repro conform`` and ``tests/test_conformance.py``
both run the same corpus, so the CLI report can never pass while the
test suite fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

__all__ = ["GoldenVector", "VectorResult", "VECTORS", "run_vectors"]


@dataclass(frozen=True)
class GoldenVector:
    """One pinned encode/decode assertion."""

    name: str
    group: str  # varint | quic-initial | packet | tparams | frames | ...
    check: Callable[[], None]  # raises on mismatch


@dataclass(frozen=True)
class VectorResult:
    name: str
    group: str
    error: Optional[str]  # None == passed

    @property
    def ok(self) -> bool:
        return self.error is None


def _eq(actual, expected, what: str) -> None:
    assert actual == expected, f"{what}: {actual!r} != {expected!r}"


# ---------------------------------------------------------------------------
# RFC 9000 Appendix A.1 — varints
# ---------------------------------------------------------------------------

# (canonical encoding hex, value)
_VARINT_VECTORS: Tuple[Tuple[str, int], ...] = (
    ("c2197c5eff14e88c", 151_288_809_941_952_652),
    ("9d7f3e7d", 494_878_333),
    ("7bbd", 15_293),
    ("25", 37),
)


def _check_varint(hex_text: str, value: int) -> None:
    from repro.quic.varint import decode_varint, encode_varint

    wire = bytes.fromhex(hex_text)
    _eq(decode_varint(wire, 0), (value, len(wire)), f"decode_varint({hex_text})")
    _eq(encode_varint(value).hex(), hex_text, f"encode_varint({value})")


# ---------------------------------------------------------------------------
# RFC 9001 Appendix A — Initial AEAD, Retry, ChaCha20-Poly1305
# ---------------------------------------------------------------------------

_A_DCID = bytes.fromhex("8394c8f03e515708")
_A_SCID = bytes.fromhex("f067a5502a4262b5")

# The CRYPTO frame carrying the A.2 ClientHello (frame header included).
_A2_CRYPTO_FRAME = bytes.fromhex(
    "060040f1010000ed0303ebf8fa56f12939b9584a3896472ec40bb863cfd3e868"
    "04fe3a47f06a2b69484c00000413011302010000c000000010000e00000b6578"
    "616d706c652e636f6dff01000100000a00080006001d00170018001000070005"
    "04616c706e000500050100000000003300260024001d00209370b2c9caa47fba"
    "baf4559fedba753de171fa71f50f1ce15d43e994ec74d748002b000302030400"
    "0d0010000e0403050306030203080408050806002d00020101001c0002400100"
    "3900320408ffffffffffffffff05048000ffff07048000ffff08011001048000"
    "75300901100f088394c8f03e5157080604"
    "8000ffff"
)


def _initial_protection(direction):
    from repro.quic.protection import ProtectionKeys

    aead = direction.aead()
    return ProtectionKeys(
        seal=aead.seal, open=aead.open, iv=direction.iv, header_mask=direction.header_mask
    )


def _check_a1_key_schedule() -> None:
    from repro.quic.initial_aead import derive_initial_keys

    keys = derive_initial_keys(_A_DCID, 1)
    _eq(keys.client.key.hex(), "1f369613dd76d5467730efcbe3b1a22d", "client key")
    _eq(keys.client.iv.hex(), "fa044b2f42a3fd3b46fb255c", "client iv")
    _eq(keys.client.hp.hex(), "9f50449e04a0e810283a1e9933adedd2", "client hp")
    _eq(keys.server.key.hex(), "cf3a5331653c364c88f0f379b6067e37", "server key")
    _eq(keys.server.iv.hex(), "0ac1493ca1905853b0bba03e", "server iv")
    _eq(keys.server.hp.hex(), "c206b8d9b9f0f37644430b490eeaa314", "server hp")


def _check_a2_client_initial() -> None:
    from repro.quic.initial_aead import derive_initial_keys
    from repro.quic.packet import PacketType
    from repro.quic.protection import protect_long, unprotect

    keys = _initial_protection(derive_initial_keys(_A_DCID, 1).client)
    payload = _A2_CRYPTO_FRAME + bytes(1162 - len(_A2_CRYPTO_FRAME))
    packet = protect_long(keys, PacketType.INITIAL, 1, _A_DCID, b"", 2, payload, pn_length=4)
    _eq(len(packet), 1200, "A.2 packet length")
    _eq(
        packet[:64].hex(),
        "c000000001088394c8f03e5157080000449e7b9aec34d1b1c98dd7689fb8ec11"
        "d242b123dc9bd8bab936b47d92ec356c0bab7df5976d27cd449f63300099f399",
        "A.2 protected prefix",
    )
    _eq(packet[-16:].hex(), "e221af44860018ab0856972e194cd934", "A.2 protected suffix")
    plain = unprotect(packet, 0, keys)
    _eq(plain.packet_number, 2, "A.2 packet number")
    _eq(plain.payload, payload, "A.2 unprotected payload")
    _eq(plain.packet_type, PacketType.INITIAL, "A.2 packet type")


def _check_a3_server_initial() -> None:
    from repro.quic.initial_aead import derive_initial_keys
    from repro.quic.packet import PacketType
    from repro.quic.protection import protect_long

    keys = _initial_protection(derive_initial_keys(_A_DCID, 1).server)
    payload = bytes.fromhex(
        "02000000000600405a020000560303eefce7f7b37ba1d1632e96677825ddf739"
        "88cfc79825df566dc5430b9a045a1200130100002e00330024001d00209d3c94"
        "0d89690b84d08a60993c144eca684d1081287c834d5311bcf32bb9da1a002b00"
        "020304"
    )
    packet = protect_long(
        keys, PacketType.INITIAL, 1, b"", _A_SCID, 1, payload, pn_length=2
    )
    assert packet.hex().startswith(
        "cf000000010008f067a5502a4262b5004075c0d95a482cd0991cd25b0aac406a"
    ), f"A.3 protected prefix mismatch: {packet[:32].hex()}"


_A4_RETRY_HEX = (
    "ff000000010008f067a5502a4262b5746f6b656e04a265ba2eff4d829058fb3f0f2496ba"
)


def _check_a4_retry() -> None:
    from repro.quic.packet import PacketDecodeError
    from repro.quic.retry import decode_retry, encode_retry

    packet = encode_retry(1, b"", _A_SCID, b"token", _A_DCID, first_byte_entropy=0x0F)
    _eq(packet.hex(), _A4_RETRY_HEX, "A.4 Retry packet")
    parsed = decode_retry(packet, original_dcid=_A_DCID)
    _eq(parsed.version, 1, "A.4 version")
    _eq(parsed.scid, _A_SCID, "A.4 SCID")
    _eq(parsed.token, b"token", "A.4 token")
    tampered = packet[:-1] + bytes([packet[-1] ^ 0x01])
    try:
        decode_retry(tampered, original_dcid=_A_DCID)
    except PacketDecodeError:
        pass
    else:
        raise AssertionError("tampered Retry integrity tag was accepted")


def _check_a5_chacha_short_header() -> None:
    from repro.crypto.aead import header_mask_chacha
    from repro.crypto.chacha import ChaCha20Poly1305
    from repro.quic.protection import ProtectionKeys, protect_short, unprotect

    key = bytes.fromhex(
        "c6d98ff3441c3fe1b2182094f69caa2ed4b716b65488960a7a984979fb23e1c8"
    )
    hp = bytes.fromhex(
        "25a282b9e82f06f21f488917a4fc8f1b73573685608597d0efcb076b0ab7a7a4"
    )
    aead = ChaCha20Poly1305(key)
    keys = ProtectionKeys(
        seal=aead.seal,
        open=aead.open,
        iv=bytes.fromhex("e0459b3474bdd0e44a41c144"),
        header_mask=lambda sample: header_mask_chacha(hp, sample),
    )
    packet = protect_short(keys, b"", 654_360_564, b"\x01", pn_length=3)
    _eq(packet.hex(), "4cfe4189655e5cd55c41f69080575d7999c25a5bfb", "A.5 packet")
    plain = unprotect(packet, 0, keys, largest_pn=654_360_563, short_header_dcid_length=0)
    _eq(plain.packet_number, 654_360_564, "A.5 packet number")
    _eq(plain.payload, b"\x01", "A.5 payload")


# ---------------------------------------------------------------------------
# Packet headers (RFC 9000 §17)
# ---------------------------------------------------------------------------

_VN_HEX = "aa00000000088394c8f03e51570808f067a5502a4262b500000001ff00001d"


def _check_version_negotiation() -> None:
    from repro.quic.packet import decode_version_negotiation, encode_version_negotiation

    packet = encode_version_negotiation(
        _A_DCID, _A_SCID, [1, 0xFF00001D], first_byte_entropy=0x2A
    )
    _eq(packet.hex(), _VN_HEX, "VN packet")
    parsed = decode_version_negotiation(packet)
    _eq(parsed.dcid, _A_DCID, "VN DCID")
    _eq(parsed.scid, _A_SCID, "VN SCID")
    _eq(parsed.supported_versions, [1, 0xFF00001D], "VN versions")


def _check_long_header() -> None:
    from repro.quic.packet import PacketType, decode_long_header, encode_long_header

    # The unprotected A.2 client Initial header (RFC 9001 A.2).
    header, pn_offset = encode_long_header(
        PacketType.INITIAL, 1, _A_DCID, b"", 2, 1178, token=b"", packet_number_length=4
    )
    _eq(header.hex(), "c300000001088394c8f03e5157080000449e00000002", "A.2 header")
    _eq(pn_offset, 18, "A.2 pn offset")
    parsed = decode_long_header(header)
    _eq(parsed.packet_type, PacketType.INITIAL, "long header type")
    _eq(parsed.dcid, _A_DCID, "long header DCID")
    _eq(parsed.payload_length, 1182, "long header length field")
    _eq(parsed.header_offset, 18, "long header pn offset")


# ---------------------------------------------------------------------------
# Transport parameters (RFC 9000 §18, values from the A.2 ClientHello)
# ---------------------------------------------------------------------------

# The quic_transport_parameters extension body of the A.2 ClientHello.
_A2_TPARAMS_HEX = (
    "0408ffffffffffffffff05048000ffff07048000ffff080110"
    "0104800075300901100f088394c8f03e51570806048000ffff"
)

# The same parameters re-encoded by this repository (ascending IDs,
# minimal varints) — the canonical form `TransportParameters.encode`
# must keep producing.
_A2_TPARAMS_CANONICAL_HEX = (
    "0104800075300408ffffffffffffffff05048000ffff06048000ffff"
    "07048000ffff0801100901100f088394c8f03e515708"
)


def _check_transport_params() -> None:
    from repro.quic.transport_params import TransportParameters

    params = TransportParameters.decode(bytes.fromhex(_A2_TPARAMS_HEX))
    _eq(params.initial_max_data, (1 << 62) - 1, "initial_max_data")
    _eq(params.initial_max_stream_data_bidi_local, 65535, "bidi_local")
    _eq(params.initial_max_stream_data_bidi_remote, 65535, "bidi_remote")
    _eq(params.initial_max_stream_data_uni, 65535, "uni")
    _eq(params.initial_max_streams_bidi, 16, "max_streams_bidi")
    _eq(params.initial_max_streams_uni, 16, "max_streams_uni")
    _eq(params.max_idle_timeout, 30000, "max_idle_timeout")
    _eq(params.initial_source_connection_id, _A_DCID, "initial_scid")
    _eq(params.encode().hex(), _A2_TPARAMS_CANONICAL_HEX, "canonical re-encoding")
    _eq(TransportParameters.decode(params.encode()), params, "re-decode")


# ---------------------------------------------------------------------------
# QUIC frames (RFC 9000 §19)
# ---------------------------------------------------------------------------

_FRAMES_HEX = "0102632800000906000268691c41280000"


def _check_frames() -> None:
    from repro.quic.frames import (
        AckFrame,
        ConnectionCloseFrame,
        CryptoFrame,
        PingFrame,
        decode_frames,
        encode_frames,
    )

    frames = [
        PingFrame(),
        AckFrame(largest_acknowledged=9000, ack_delay=0, ranges=[(8991, 9000)]),
        CryptoFrame(offset=0, data=b"hi"),
        ConnectionCloseFrame(error_code=0x128, frame_type=0, reason=""),
    ]
    _eq(encode_frames(frames).hex(), _FRAMES_HEX, "frame encoding")
    _eq(decode_frames(bytes.fromhex(_FRAMES_HEX)), frames, "frame decoding")


# ---------------------------------------------------------------------------
# Alt-Svc (RFC 7838)
# ---------------------------------------------------------------------------


def _check_altsvc() -> None:
    from repro.http.altsvc import AltSvcEntry, format_alt_svc, h3_alpn_tokens, parse_alt_svc

    header = 'h3-29=":443"; ma=86400, h3-27=":443"'
    entries = parse_alt_svc(header)
    _eq(
        entries,
        [
            AltSvcEntry(alpn="h3-29", host="", port=443, max_age=86400),
            AltSvcEntry(alpn="h3-27", host="", port=443, max_age=None),
        ],
        "Alt-Svc parse",
    )
    _eq(h3_alpn_tokens(entries), ["h3-29", "h3-27"], "h3 tokens")
    _eq(format_alt_svc(entries), header, "Alt-Svc format")
    _eq(parse_alt_svc(format_alt_svc(entries)), entries, "Alt-Svc round-trip")
    _eq(parse_alt_svc("clear"), [], "Alt-Svc clear")
    _eq(parse_alt_svc('h3%2D29=":443"')[0].alpn, "h3-29", "percent decoding")


# ---------------------------------------------------------------------------
# DNS names and HTTPS/SVCB RRs (draft-ietf-dnsop-svcb-https)
# ---------------------------------------------------------------------------

_DNS_NAME_HEX = "03777777076578616d706c6503636f6d00"
_HTTPS_RDATA_HEX = "000100000100060268330268320003000201bb00040004c0000201"


def _check_dns_name() -> None:
    from repro.dns.records import decode_dns_name, encode_dns_name

    _eq(encode_dns_name("www.example.com").hex(), _DNS_NAME_HEX, "name encoding")
    _eq(
        decode_dns_name(bytes.fromhex(_DNS_NAME_HEX)),
        ("www.example.com", len(_DNS_NAME_HEX) // 2),
        "name decoding",
    )
    _eq(encode_dns_name("."), b"\x00", "root encoding")
    _eq(decode_dns_name(b"\x00"), (".", 1), "root decoding")


def _check_https_rr() -> None:
    from repro.dns.records import HttpsRecord, SvcParams
    from repro.netsim.addresses import IPv4Address

    record = HttpsRecord(
        name="example.com",
        priority=1,
        target=".",
        params=SvcParams(
            alpn=("h3", "h2"), port=443, ipv4hint=(IPv4Address(0xC0000201),)
        ),
    )
    _eq(record.encode_rdata().hex(), _HTTPS_RDATA_HEX, "HTTPS RDATA encoding")
    parsed = HttpsRecord.decode_rdata("example.com", bytes.fromhex(_HTTPS_RDATA_HEX))
    _eq(parsed, record, "HTTPS RDATA decoding")
    assert not parsed.is_alias, "priority 1 is ServiceMode"
    alias = HttpsRecord.decode_rdata(
        "example.com", bytes([0, 0]) + bytes.fromhex("05616c696173076578616d706c6503636f6d00")
    )
    assert alias.is_alias and alias.target == "alias.example.com", "AliasMode record"


# ---------------------------------------------------------------------------
# QPACK (RFC 9204, static table + literals)
# ---------------------------------------------------------------------------

def _check_qpack() -> None:
    from repro.http.qpack import decode_header_block, encode_header_block

    headers = [
        (":method", "GET"),      # static index 17 -> indexed field line
        (":path", "/"),          # static index 1  -> indexed field line
        ("x-quic", "9000"),      # literal name + literal value
        ("age", "600"),          # static name reference + literal value
    ]
    expected_hex = "0000d1c126782d7175696304393030305203363030"
    _eq(encode_header_block(headers).hex(), expected_hex, "QPACK encoding")
    _eq(decode_header_block(bytes.fromhex(expected_hex)), headers, "QPACK decoding")


# ---------------------------------------------------------------------------
# TLS handshake messages and records (RFC 8446)
# ---------------------------------------------------------------------------


def _check_client_hello() -> None:
    from repro.tls.messages import ClientHello, HandshakeType, iter_messages

    framed = _A2_CRYPTO_FRAME[4:]  # strip the CRYPTO frame header (06 00 40f1)
    messages = list(iter_messages(framed))
    _eq(len(messages), 1, "one handshake message")
    msg_type, body, raw = messages[0]
    _eq(msg_type, HandshakeType.CLIENT_HELLO, "message type")
    hello = ClientHello.decode(body)
    _eq(
        hello.random.hex(),
        "ebf8fa56f12939b9584a3896472ec40bb863cfd3e86804fe3a47f06a2b69484c",
        "ClientHello random",
    )
    _eq(hello.cipher_suites, [0x1301, 0x1302], "cipher suites")
    _eq(hello.encode(), raw, "ClientHello re-encoding")


def _check_tls_alert_record() -> None:
    from repro.tls.alerts import AlertDescription, AlertError
    from repro.tls.record import RecordLayer, encode_alert

    wire = encode_alert(AlertDescription.HANDSHAKE_FAILURE)
    _eq(wire.hex(), "15030300020228", "alert record encoding")
    try:
        RecordLayer().unwrap(wire)
    except AlertError as error:
        _eq(error.description, AlertDescription.HANDSHAKE_FAILURE, "alert description")
        assert error.remote, "alert flagged remote"
    else:
        raise AssertionError("fatal alert did not raise AlertError")


# ---------------------------------------------------------------------------
# Regression vectors — inputs that once crashed a parser with an
# unclassified exception before the decoders were hardened to raise
# typed protocol errors.  Each pins the *typed* rejection.
# ---------------------------------------------------------------------------


def _expect_reject(parse: Callable[[], object], exc_type: type, what: str) -> None:
    try:
        parse()
    except exc_type:
        return
    except Exception as error:  # pragma: no cover - the failure detail
        raise AssertionError(
            f"{what}: raised {type(error).__name__} instead of {exc_type.__name__}"
        ) from error
    raise AssertionError(f"{what}: accepted malformed input")


def _check_regressions() -> None:
    from repro.dns.records import DnsWireError, HttpsRecord, decode_dns_name
    from repro.http.qpack import QpackError, decode_header_block
    from repro.quic.frames import FrameDecodeError, decode_frames
    from repro.quic.packet import PacketDecodeError, decode_short_header
    from repro.quic.transport_params import TransportParameterError, TransportParameters
    from repro.tls.alerts import AlertError
    from repro.tls.messages import ClientHello, MessageDecodeError
    from repro.tls.record import RecordLayer

    # ACK frame whose first range underflows below packet number 0.
    _expect_reject(
        lambda: decode_frames(bytes.fromhex("020500000a")),
        FrameDecodeError,
        "ACK range underflow",
    )
    # Non-minimal varint encoding of frame type 0 (found by the fuzzer:
    # it decoded as a second PADDING frame that coalesced with its
    # neighbour on re-encode, breaking the round-trip oracle).
    _expect_reject(
        lambda: decode_frames(bytes.fromhex("014000")),
        FrameDecodeError,
        "non-minimal frame type",
    )
    # QPACK prefixed integer with unbounded continuation bytes.
    _expect_reject(
        lambda: decode_header_block(bytes.fromhex("0000ff" + "80" * 10 + "01")),
        QpackError,
        "QPACK integer overflow",
    )
    # Truncated QPACK string literal.
    _expect_reject(
        lambda: decode_header_block(bytes.fromhex("00005203")),
        QpackError,
        "QPACK truncated string",
    )
    # DNS label with the compression-pointer prefix inside RDATA.
    _expect_reject(
        lambda: decode_dns_name(bytes.fromhex("c00c")),
        DnsWireError,
        "DNS compression pointer",
    )
    # SVCB port SvcParam with the wrong length.
    _expect_reject(
        lambda: HttpsRecord.decode_rdata("x", bytes.fromhex("000100000300012a")),
        DnsWireError,
        "SVCB bad port length",
    )
    # Transport parameter whose declared length exceeds the payload.
    _expect_reject(
        lambda: TransportParameters.decode(bytes.fromhex("01020f")),
        TransportParameterError,
        "transport parameter truncation",
    )
    # ClientHello cut inside the random field.
    _expect_reject(
        lambda: ClientHello.decode(bytes.fromhex("0303ebf8fa56")),
        MessageDecodeError,
        "ClientHello truncated random",
    )
    # Short header too small to carry a connection ID.
    _expect_reject(
        lambda: decode_short_header(bytes.fromhex("4100"), 8),
        PacketDecodeError,
        "short header underrun",
    )
    # Fatal alert with a code outside the AlertDescription registry
    # (used to raise a bare ValueError from the enum constructor).
    try:
        RecordLayer().unwrap(bytes.fromhex("1503030002 02aa".replace(" ", "")))
    except AlertError as error:
        _eq(int(error.description), 0xAA, "unknown alert code carried as int")
    else:
        raise AssertionError("unknown fatal alert was not raised")


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def _varint_vector(hex_text: str, value: int) -> GoldenVector:
    return GoldenVector(
        name=f"varint-{hex_text}",
        group="varint",
        check=lambda: _check_varint(hex_text, value),
    )


VECTORS: Tuple[GoldenVector, ...] = tuple(
    [_varint_vector(h, v) for h, v in _VARINT_VECTORS]
    + [
        GoldenVector("rfc9001-a1-key-schedule", "quic-initial", _check_a1_key_schedule),
        GoldenVector("rfc9001-a2-client-initial", "quic-initial", _check_a2_client_initial),
        GoldenVector("rfc9001-a3-server-initial", "quic-initial", _check_a3_server_initial),
        GoldenVector("rfc9001-a4-retry", "quic-initial", _check_a4_retry),
        GoldenVector("rfc9001-a5-chacha20", "quic-initial", _check_a5_chacha_short_header),
        GoldenVector("version-negotiation", "packet", _check_version_negotiation),
        GoldenVector("long-header-a2", "packet", _check_long_header),
        GoldenVector("transport-params-a2", "tparams", _check_transport_params),
        GoldenVector("frames-mixed", "frames", _check_frames),
        GoldenVector("alt-svc-rfc7838", "altsvc", _check_altsvc),
        GoldenVector("dns-name", "dns", _check_dns_name),
        GoldenVector("https-rr", "dns", _check_https_rr),
        GoldenVector("qpack-static-and-literal", "qpack", _check_qpack),
        GoldenVector("tls-client-hello-a2", "tls", _check_client_hello),
        GoldenVector("tls-alert-record", "tls", _check_tls_alert_record),
        GoldenVector("regression-typed-rejects", "regression", _check_regressions),
    ]
)


def run_vectors(registry=None) -> List[VectorResult]:
    """Run the whole corpus; returns one result per vector.

    When ``registry`` is given, ``conform.vectors_ok`` counts passing
    vectors and ``conform.vectors_fail{group=...}`` the failures.
    """
    results: List[VectorResult] = []
    for vector in VECTORS:
        try:
            vector.check()
        except Exception as error:
            detail = f"{type(error).__name__}: {error}"
            results.append(VectorResult(vector.name, vector.group, detail))
            if registry is not None:
                registry.counter("conform.vectors_fail", group=vector.group).inc()
        else:
            results.append(VectorResult(vector.name, vector.group, None))
            if registry is not None:
                registry.counter("conform.vectors_ok").inc()
    return results
