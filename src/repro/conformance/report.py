"""The conformance report: vectors + fuzz + differential, one verdict.

``repro conform`` assembles three evidence streams — the golden-vector
corpus, the deterministic fuzz campaign, and the serial-vs-parallel
differential replay — into a single deterministic text report and a
machine-readable JSON document.  Nothing time- or host-dependent goes
into either: two runs with the same seed and iteration count produce
byte-identical output, which is itself part of the conformance
contract (asserted in ``tests/test_conformance.py``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.tables import render_table
from repro.conformance.differential import DifferentialResult, FleetDifferentialResult
from repro.conformance.fuzzer import FuzzResult
from repro.conformance.vectors import VectorResult
from repro.observability.metrics import parse_metric_key

__all__ = [
    "CONFORMANCE_FORMAT_VERSION",
    "build_conformance_report",
    "conformance_document",
    "render_conformance_json",
    "write_conformance_json",
    "conformance_ok",
]

CONFORMANCE_FORMAT_VERSION = 1


def conformance_ok(
    vectors: List[VectorResult],
    fuzz: FuzzResult,
    differential: Optional[DifferentialResult],
    fleet: Optional[FleetDifferentialResult] = None,
) -> bool:
    """The exit-code predicate: everything green (or skipped)."""
    if any(not result.ok for result in vectors):
        return False
    if not fuzz.ok:
        return False
    if differential is not None and not differential.ok:
        return False
    if fleet is not None and not fleet.ok:
        return False
    return True


def _fuzz_rows(fuzz: FuzzResult) -> List[tuple]:
    counters = fuzz.registry.snapshot()["counters"]
    modules: Dict[str, Dict[str, int]] = {}
    for key, value in counters.items():
        name, labels = parse_metric_key(key)
        if not name.startswith("conform.fuzz_"):
            continue
        module = labels.get("module", "?")
        modules.setdefault(module, {})[name[len("conform.fuzz_") :]] = value
    rows = []
    for module in sorted(modules):
        tallies = modules[module]
        rows.append(
            (
                module,
                tallies.get("ok", 0),
                tallies.get("rejects", 0),
                tallies.get("crashes", 0),
            )
        )
    return rows


def build_conformance_report(
    vectors: List[VectorResult],
    fuzz: FuzzResult,
    differential: Optional[DifferentialResult],
    workers: int = 1,
    fleet: Optional[FleetDifferentialResult] = None,
) -> str:
    """Render the deterministic human-readable conformance report."""
    lines: List[str] = []
    lines.append(
        f"conformance report — seed {fuzz.seed}, "
        f"{fuzz.iterations} fuzz iterations, {workers} worker(s)"
    )
    lines.append("")

    # -- golden vectors -------------------------------------------------------
    passed = sum(1 for result in vectors if result.ok)
    lines.append(f"golden vectors: {passed}/{len(vectors)} ok")
    for result in vectors:
        if not result.ok:
            lines.append(f"  FAIL {result.name} [{result.group}]: {result.error}")
    lines.append("")

    # -- fuzz campaign --------------------------------------------------------
    lines.append(
        render_table(
            ("module", "parsed ok", "typed rejects", "crashes"),
            _fuzz_rows(fuzz),
            title="deterministic fuzz campaign",
        )
    )
    for crash in fuzz.crashes:
        lines.append(f"  CRASH {crash.repro_hint(fuzz.seed)}")
    lines.append("")

    # -- differential oracle --------------------------------------------------
    if differential is None:
        lines.append("differential: skipped")
    elif differential.ok:
        lines.append(
            f"differential: serial == {differential.workers}-worker campaign "
            f"({differential.records_compared} records over "
            f"{len(differential.stage_records)} stages; metrics.json byte-identical)"
        )
    else:
        lines.append(
            f"differential: FAILED against {differential.workers} workers"
        )
        for mismatch in differential.mismatches:
            lines.append(f"  DIFF {mismatch}")
    lines.append("")

    # -- fleet oracle ---------------------------------------------------------
    if fleet is not None:
        if fleet.ok:
            lines.append(
                f"fleet: sequential == fleet({fleet.jobs} jobs) matrix"
                f" ({fleet.cells} cells; db and metrics.json byte-identical;"
                f" {fleet.world_reuse_hits} world reuse hits,"
                f" {fleet.pool_respawns} pool respawns)"
            )
        else:
            lines.append(f"fleet: FAILED against {fleet.jobs} jobs")
            for mismatch in fleet.mismatches:
                lines.append(f"  DIFF {mismatch}")
        lines.append("")

    verdict = "OK" if conformance_ok(vectors, fuzz, differential, fleet) else "FAILED"
    lines.append(f"verdict: {verdict}")
    return "\n".join(lines)


def conformance_document(
    vectors: List[VectorResult],
    fuzz: FuzzResult,
    differential: Optional[DifferentialResult],
    registry,
    workers: int = 1,
    fleet: Optional[FleetDifferentialResult] = None,
) -> Dict:
    """The machine-readable conformance ``metrics.json`` document.

    ``registry`` is the merged registry holding both the vector and
    fuzz counters; its non-volatile snapshot is embedded the same way
    the campaign ``metrics.json`` embeds scan counters.
    """
    return {
        "format": CONFORMANCE_FORMAT_VERSION,
        "config": {
            "seed": fuzz.seed,
            "iterations": fuzz.iterations,
            "workers": workers,
            "differential": None
            if differential is None
            else {
                "workers": differential.workers,
                "records_compared": differential.records_compared,
            },
            "fleet": None
            if fleet is None
            else {
                "jobs": fleet.jobs,
                "cells": fleet.cells,
                "world_reuse_hits": fleet.world_reuse_hits,
                "pool_respawns": fleet.pool_respawns,
            },
        },
        "ok": conformance_ok(vectors, fuzz, differential, fleet),
        "vectors": {
            "total": len(vectors),
            "failed": sorted(result.name for result in vectors if not result.ok),
        },
        "crashes": [
            {
                "module": crash.module,
                "iteration": crash.iteration,
                "input": crash.data.hex(),
                "error": crash.error,
            }
            for crash in fuzz.crashes
        ],
        "metrics": registry.snapshot(include_volatile=False),
    }


def render_conformance_json(*args, **kwargs) -> str:
    """Canonical serialisation (sorted keys, stable indentation)."""
    return json.dumps(conformance_document(*args, **kwargs), indent=2, sort_keys=True) + "\n"


def write_conformance_json(path, *args, **kwargs) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_conformance_json(*args, **kwargs))
    return path
