"""Seeded xorshift RNG for the deterministic fuzz harness.

The fuzzer must reproduce a failure from ``(seed, iteration)`` alone —
on any platform, any worker count, any Python version — so it cannot
use :mod:`random` (whose Mersenne Twister stream is shared global
state) and must derive every iteration's stream independently.  An
xorshift64* generator is 20 lines, passes the statistical bar a
mutation fuzzer needs, and splits cleanly: ``XorShift64.for_iteration``
mixes the campaign seed and the iteration index through a SplitMix64
finalizer, so iteration *i* produces the same mutations whether it ran
serially or as part of any shard partition (the property the
``--workers N`` conformance merge relies on).
"""

from __future__ import annotations

from typing import Sequence, TypeVar

__all__ = ["XorShift64"]

_MASK = (1 << 64) - 1

T = TypeVar("T")


def _splitmix64(value: int) -> int:
    """SplitMix64 finalizer: a cheap, well-mixed 64-bit hash."""
    value = (value + 0x9E3779B97F4A7C15) & _MASK
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK
    return value ^ (value >> 31)


class XorShift64:
    """xorshift64* with SplitMix64 seeding (never a zero state)."""

    __slots__ = ("state",)

    def __init__(self, seed: int):
        self.state = _splitmix64(seed & _MASK) or 0x2545F4914F6CDD1D

    @classmethod
    def for_iteration(cls, seed: int, iteration: int) -> "XorShift64":
        """The stream for one fuzz iteration, independent of sharding."""
        return cls(_splitmix64(seed & _MASK) ^ _splitmix64((iteration + 1) & _MASK))

    def next_u64(self) -> int:
        x = self.state
        x ^= (x >> 12)
        x ^= (x << 25) & _MASK
        x ^= (x >> 27)
        self.state = x
        return (x * 0x2545F4914F6CDD1D) & _MASK

    def below(self, bound: int) -> int:
        """A uniform-enough integer in ``[0, bound)``; bound >= 1."""
        return self.next_u64() % bound

    def chance(self, numerator: int, denominator: int) -> bool:
        return self.below(denominator) < numerator

    def choice(self, seq: Sequence[T]) -> T:
        return seq[self.below(len(seq))]

    def bytes(self, count: int) -> bytes:
        out = bytearray()
        while len(out) < count:
            out += self.next_u64().to_bytes(8, "big")
        return bytes(out[:count])
