"""Deterministic mutation fuzzer over every parser entry point.

Each iteration is a pure function of ``(campaign seed, iteration
index)``: the index picks the target module round-robin, a
:class:`~repro.conformance.rng.XorShift64` derived from the pair picks
a seed input from that target's corpus and drives a stack of mutators
(bit flips, byte sets, truncation, extension, splicing, length-field
tweaks).  Because no state crosses iterations, a run can be
partitioned into contiguous shards and merged back — totals and crash
lists are identical for any shard count, which is what lets ``repro
conform --workers N`` share one metrics contract with the serial path.

Two oracles judge every mutated input:

- **no-crash** — a parser may *reject* the input with its typed
  protocol error (:class:`PacketDecodeError`,
  :class:`FrameDecodeError`, :class:`QpackError`, ...), but any other
  exception escaping the entry point is a crash;
- **round-trip** — where a module has a faithful encoder,
  ``decode(encode(decode(x)))`` must equal ``decode(x)``; a violation
  is reported as a crash of the round-trip oracle.

Counters: ``conform.fuzz_ok{module}``, ``conform.fuzz_rejects{module}``
and ``conform.fuzz_crashes{module}`` land in the current
:class:`MetricsRegistry` exactly as scan counters do, so they merge
into ``metrics.json`` through the same machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.conformance.rng import XorShift64
from repro.observability.metrics import MetricsRegistry

__all__ = [
    "FuzzTarget",
    "FuzzCrash",
    "FuzzResult",
    "build_targets",
    "mutate",
    "run_fuzz",
    "run_fuzz_sharded",
]


@dataclass(frozen=True)
class FuzzTarget:
    """One parser entry point under fuzz."""

    name: str  # module label, e.g. "quic.frames"
    seeds: Tuple[bytes, ...]  # valid wire images to mutate from
    parse: Callable[[bytes], object]
    rejects: Tuple[type, ...]  # typed protocol errors = clean reject
    roundtrip: Optional[Callable[[object], None]] = None  # raises on violation


@dataclass(frozen=True)
class FuzzCrash:
    """An unclassified exception (or oracle violation) with its repro."""

    module: str
    iteration: int
    data: bytes
    error: str

    def repro_hint(self, seed: int) -> str:
        return (
            f"{self.module} iteration {self.iteration} (seed {seed}): {self.error}; "
            f"input {self.data.hex() or '(empty)'}"
        )


@dataclass
class FuzzResult:
    seed: int
    iterations: int
    crashes: List[FuzzCrash]
    registry: MetricsRegistry

    @property
    def ok(self) -> bool:
        return not self.crashes


# ---------------------------------------------------------------------------
# Mutators
# ---------------------------------------------------------------------------


def _bit_flip(data: bytearray, rng: XorShift64) -> None:
    for _ in range(1 + rng.below(8)):
        position = rng.below(len(data))
        data[position] ^= 1 << rng.below(8)


def _byte_set(data: bytearray, rng: XorShift64) -> None:
    for _ in range(1 + rng.below(4)):
        data[rng.below(len(data))] = rng.below(256)


def _truncate(data: bytearray, rng: XorShift64) -> None:
    del data[rng.below(len(data)):]


def _extend(data: bytearray, rng: XorShift64) -> None:
    position = rng.below(len(data) + 1)
    data[position:position] = rng.bytes(1 + rng.below(8))


def _splice(data: bytearray, rng: XorShift64) -> None:
    length = 1 + rng.below(max(1, len(data) // 2))
    source = rng.below(len(data))
    dest = rng.below(len(data))
    chunk = bytes(data[source : source + length])
    data[dest : dest + len(chunk)] = chunk


def _length_tweak(data: bytearray, rng: XorShift64) -> None:
    # Nudge a byte up or down a little: near-valid length fields are
    # how truncation and overlap bugs get reached.
    position = rng.below(len(data))
    delta = 1 + rng.below(4)
    if rng.chance(1, 2):
        delta = -delta
    data[position] = (data[position] + delta) % 256


_MUTATORS: Tuple[Callable[[bytearray, XorShift64], None], ...] = (
    _bit_flip,
    _byte_set,
    _truncate,
    _extend,
    _splice,
    _length_tweak,
)


def mutate(seed_input: bytes, rng: XorShift64) -> bytes:
    """Apply 1-3 randomly chosen mutators to a corpus entry."""
    data = bytearray(seed_input)
    for _ in range(1 + rng.below(3)):
        if not data:
            data[:] = rng.bytes(1 + rng.below(8))
        rng.choice(_MUTATORS)(data, rng)
    return bytes(data)


# ---------------------------------------------------------------------------
# Targets: one per hardened parser entry point
# ---------------------------------------------------------------------------


def _seed_corpus():
    """Valid wire images per module, built from the golden vectors."""
    from repro.conformance import vectors as v
    from repro.quic.frames import encode_frames, PaddingFrame, StreamFrame
    from repro.quic.packet import encode_long_header, encode_short_header, PacketType
    from repro.quic.retry import encode_retry
    from repro.quic.transport_params import TransportParameters
    from repro.http.qpack import encode_header_block
    from repro.tls.record import encode_alert
    from repro.tls.alerts import AlertDescription

    long_header, _ = encode_long_header(
        PacketType.HANDSHAKE, 1, v._A_DCID, v._A_SCID, 7, 32, packet_number_length=2
    )
    short_header, _ = encode_short_header(v._A_DCID, 9000, 2)
    retry = encode_retry(1, b"", v._A_SCID, b"token", v._A_DCID)
    frames = bytes.fromhex(v._FRAMES_HEX) + encode_frames(
        [PaddingFrame(4), StreamFrame(stream_id=0, offset=0, data=b"GET /", fin=True)]
    )
    return {
        "quic.varint": tuple(bytes.fromhex(h) for h, _ in v._VARINT_VECTORS),
        "quic.packet": (
            bytes.fromhex(v._VN_HEX),
            long_header + bytes(34),
            short_header + bytes(20),
            retry,
        ),
        "quic.transport_params": (
            bytes.fromhex(v._A2_TPARAMS_HEX),
            TransportParameters(disable_active_migration=True, max_udp_payload_size=1472).encode(),
        ),
        "quic.frames": (frames,),
        "http.altsvc": (
            b'h3-29=":443"; ma=86400, h3-27=":443"',
            b'h3="alt.example.com:8443"; ma=3600',
            b"clear",
        ),
        "http.qpack": (
            encode_header_block(
                [(":method", "GET"), (":path", "/"), ("x-quic", "9000"), ("age", "600")]
            ),
        ),
        "dns.records": (bytes.fromhex(v._HTTPS_RDATA_HEX),),
        "tls.messages": (v._A2_CRYPTO_FRAME[4:],),
        "tls.record": (
            encode_alert(AlertDescription.HANDSHAKE_FAILURE),
            b"\x16\x03\x03\x00\x04\x08\x00\x00\x00",
        ),
        "netsim.paths": (
            b"baseline",
            b"geo-satellite",
            b"bufferbloat,queue=120kb",
            b"rate=2mbps,rtt=600ms",
            b"rate=500kbps,loss=5%,burst=9kb",
            b"up=1mbps,down=10mbps,rtt=40ms",
        ),
    }


def _parse_packet(data: bytes):
    from repro.quic.packet import (
        PacketDecodeError,
        decode_long_header,
        decode_short_header,
        decode_version_negotiation,
    )
    from repro.quic.retry import decode_retry

    if not data:
        raise PacketDecodeError("empty datagram")
    if data[0] & 0x80:
        if len(data) >= 5 and data[1:5] == b"\x00\x00\x00\x00":
            return decode_version_negotiation(data)
        if ((data[0] >> 4) & 0x3) == 0x3 and len(data) >= 5:
            return decode_retry(data)
        return decode_long_header(data)
    return decode_short_header(data, 8)


def _parse_tls_messages(data: bytes):
    from repro.tls.messages import (
        ClientHello,
        EncryptedExtensions,
        HandshakeType,
        ServerHello,
        iter_messages,
    )

    decoded = []
    for msg_type, body, _raw in iter_messages(data):
        if msg_type == HandshakeType.CLIENT_HELLO:
            decoded.append(ClientHello.decode(body))
        elif msg_type == HandshakeType.SERVER_HELLO:
            decoded.append(ServerHello.decode(body))
        elif msg_type == HandshakeType.ENCRYPTED_EXTENSIONS:
            decoded.append(EncryptedExtensions.decode(body))
    return decoded


def build_targets() -> Tuple[FuzzTarget, ...]:
    """The registry of fuzzed entry points with their typed reject sets."""
    from repro.dns.records import DnsWireError, HttpsRecord
    from repro.http.altsvc import parse_alt_svc
    from repro.http.qpack import QpackError, decode_header_block, encode_header_block
    from repro.netsim.paths import PathSpecError, parse_path_spec
    from repro.quic.frames import FrameDecodeError, decode_frames, encode_frames
    from repro.quic.packet import PacketDecodeError
    from repro.quic.transport_params import TransportParameterError, TransportParameters
    from repro.quic.varint import decode_varint, encode_varint
    from repro.tls.alerts import AlertError
    from repro.tls.messages import MessageDecodeError
    from repro.tls.record import RecordDecodeError, RecordLayer

    corpus = _seed_corpus()

    def varint_roundtrip(result) -> None:
        value, _end = result
        assert decode_varint(encode_varint(value), 0)[0] == value, "varint round-trip"

    def tparams_roundtrip(params) -> None:
        assert TransportParameters.decode(params.encode()) == params, (
            "transport-parameter round-trip"
        )

    def frames_roundtrip(frames) -> None:
        assert decode_frames(encode_frames(frames)) == frames, "frame round-trip"

    def qpack_roundtrip(headers) -> None:
        assert decode_header_block(encode_header_block(headers)) == headers, (
            "QPACK round-trip"
        )

    def dns_roundtrip(record) -> None:
        assert HttpsRecord.decode_rdata(record.name, record.encode_rdata()) == record, (
            "HTTPS RDATA round-trip"
        )

    def path_spec_roundtrip(spec) -> None:
        assert parse_path_spec(spec.canonical()) == spec, "path-spec round-trip"

    return (
        FuzzTarget(
            "quic.varint",
            corpus["quic.varint"],
            lambda data: decode_varint(data, 0),
            (ValueError,),
            varint_roundtrip,
        ),
        FuzzTarget("quic.packet", corpus["quic.packet"], _parse_packet, (PacketDecodeError,)),
        FuzzTarget(
            "quic.transport_params",
            corpus["quic.transport_params"],
            TransportParameters.decode,
            (TransportParameterError,),
            tparams_roundtrip,
        ),
        FuzzTarget(
            "quic.frames",
            corpus["quic.frames"],
            decode_frames,
            (FrameDecodeError,),
            frames_roundtrip,
        ),
        # Alt-Svc parsing is deliberately tolerant: no exception of any
        # kind may escape, so the reject set is empty.
        FuzzTarget(
            "http.altsvc",
            corpus["http.altsvc"],
            lambda data: parse_alt_svc(data.decode("utf-8", errors="replace")),
            (),
        ),
        FuzzTarget(
            "http.qpack",
            corpus["http.qpack"],
            decode_header_block,
            (QpackError,),
            qpack_roundtrip,
        ),
        FuzzTarget(
            "dns.records",
            corpus["dns.records"],
            lambda data: HttpsRecord.decode_rdata("fuzz.example", data),
            (DnsWireError,),
            dns_roundtrip,
        ),
        FuzzTarget(
            "tls.messages", corpus["tls.messages"], _parse_tls_messages, (MessageDecodeError,)
        ),
        FuzzTarget(
            "tls.record",
            corpus["tls.record"],
            lambda data: RecordLayer().unwrap(data),
            (RecordDecodeError, AlertError),
        ),
        # The scenario-matrix path-spec grammar (docs/SCENARIOS.md): a
        # text parser, so mutated bytes go through a lossy decode; any
        # malformed spec must surface as PathSpecError, nothing else.
        FuzzTarget(
            "netsim.paths",
            corpus["netsim.paths"],
            lambda data: parse_path_spec(data.decode("utf-8", errors="replace")),
            (PathSpecError,),
            path_spec_roundtrip,
        ),
    )


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def run_iteration(
    seed: int,
    index: int,
    targets: Tuple[FuzzTarget, ...],
    registry: MetricsRegistry,
) -> Optional[FuzzCrash]:
    """One fully deterministic fuzz iteration; returns a crash or None."""
    rng = XorShift64.for_iteration(seed, index)
    target = targets[index % len(targets)]
    data = mutate(rng.choice(target.seeds), rng)
    try:
        result = target.parse(data)
        if target.roundtrip is not None:
            target.roundtrip(result)
    except target.rejects:
        registry.counter("conform.fuzz_rejects", module=target.name).inc()
        return None
    except Exception as error:
        registry.counter("conform.fuzz_crashes", module=target.name).inc()
        return FuzzCrash(
            module=target.name,
            iteration=index,
            data=data,
            error=f"{type(error).__name__}: {error}",
        )
    registry.counter("conform.fuzz_ok", module=target.name).inc()
    return None


def run_fuzz(
    seed: int,
    iterations: int,
    registry: Optional[MetricsRegistry] = None,
    start: int = 0,
    stop: Optional[int] = None,
) -> FuzzResult:
    """Run iterations ``[start, stop)`` of a campaign serially."""
    registry = registry if registry is not None else MetricsRegistry()
    targets = build_targets()
    stop = iterations if stop is None else stop
    crashes: List[FuzzCrash] = []
    for index in range(start, stop):
        crash = run_iteration(seed, index, targets, registry)
        if crash is not None:
            crashes.append(crash)
    return FuzzResult(seed=seed, iterations=iterations, crashes=crashes, registry=registry)


def run_fuzz_sharded(seed: int, iterations: int, shards: int) -> FuzzResult:
    """Partition a campaign into contiguous shards and merge the results.

    Every shard runs with a fresh registry; snapshots merge in shard
    order, and crash lists concatenate in shard order — both therefore
    match a serial :func:`run_fuzz` of the same ``(seed, iterations)``
    exactly, for any shard count.
    """
    from repro.experiments.campaign import shard_block_bounds

    shards = max(1, shards)
    merged = MetricsRegistry()
    crashes: List[FuzzCrash] = []
    for shard in range(shards):
        lo, hi = shard_block_bounds(iterations, shard, shards)
        part = run_fuzz(seed, iterations, start=lo, stop=hi)
        merged.merge_snapshot(part.registry.snapshot())
        crashes.extend(part.crashes)
    return FuzzResult(seed=seed, iterations=iterations, crashes=crashes, registry=merged)
