"""Wire-format conformance and deterministic fuzzing (``repro conform``).

The subsystem has four pillars:

* :mod:`repro.conformance.vectors` — golden vectors from RFC 9001
  Appendix A, RFC 9000 Appendix A, and the repo's own canonical
  encoders, each asserting exact encode→bytes and bytes→decode
  behaviour plus pinned regression inputs;
* :mod:`repro.conformance.fuzzer` — a seeded, shard-deterministic
  mutation fuzzer over every parser entry point, with round-trip and
  no-unclassified-exception oracles;
* :mod:`repro.conformance.differential` — a serial-vs-``--workers N``
  campaign replay diffing serialized records and metrics bytes;
* :mod:`repro.conformance.report` — the deterministic text report and
  JSON document fed by the shared :class:`MetricsRegistry` counters.

See ``docs/CONFORMANCE.md`` for vector provenance and the workflow for
pinning a fuzzer-found regression.
"""

from repro.conformance.differential import (
    DifferentialResult,
    FleetDifferentialResult,
    run_differential,
    run_fleet_differential,
)
from repro.conformance.fuzzer import (
    FuzzCrash,
    FuzzResult,
    FuzzTarget,
    build_targets,
    mutate,
    run_fuzz,
    run_fuzz_sharded,
)
from repro.conformance.report import (
    CONFORMANCE_FORMAT_VERSION,
    build_conformance_report,
    conformance_document,
    conformance_ok,
    render_conformance_json,
    write_conformance_json,
)
from repro.conformance.rng import XorShift64
from repro.conformance.vectors import GoldenVector, VECTORS, VectorResult, run_vectors

__all__ = [
    "XorShift64",
    "GoldenVector",
    "VectorResult",
    "VECTORS",
    "run_vectors",
    "FuzzTarget",
    "FuzzCrash",
    "FuzzResult",
    "build_targets",
    "mutate",
    "run_fuzz",
    "run_fuzz_sharded",
    "DifferentialResult",
    "FleetDifferentialResult",
    "run_differential",
    "run_fleet_differential",
    "CONFORMANCE_FORMAT_VERSION",
    "build_conformance_report",
    "conformance_document",
    "conformance_ok",
    "render_conformance_json",
    "write_conformance_json",
]
