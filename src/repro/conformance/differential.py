"""Differential oracle: serial vs sharded campaign byte-equality.

The parallel scan engine promises that ``--workers N`` changes nothing
but wall time: records come back in serial order and merged metrics
serialise byte-identically.  This module *replays* one campaign
configuration through both paths and diffs the serialized artefacts —
every stage's records (through the same
:func:`repro.scanners.io.dump_record` JSONL serializer the ``scan
--output`` path uses) and the deterministic ``metrics.json`` bytes.
Any divergence is reported with the first differing stage, index and
line, which is what makes a sharding regression debuggable rather than
a silent ordering flake.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["DifferentialResult", "DIFF_STAGES", "run_differential"]

# Stage attributes compared record-for-record, in pipeline order.
DIFF_STAGES = (
    "all_dns_records",
    "zmap_v4",
    "zmap_v6",
    "syn_v4",
    "syn_v6",
    "goscanner_nosni_v4",
    "goscanner_nosni_v6",
    "goscanner_sni_v4",
    "goscanner_sni_v6",
    "qscan_nosni_v4",
    "qscan_nosni_v6",
    "qscan_sni_v4",
    "qscan_sni_v6",
)


@dataclass
class DifferentialResult:
    workers: int
    records_compared: int = 0
    stage_records: Dict[str, int] = field(default_factory=dict)
    mismatches: List[str] = field(default_factory=list)
    metrics_identical: bool = False

    @property
    def ok(self) -> bool:
        return self.metrics_identical and not self.mismatches


def _record_lines(campaign, stage: str) -> List[str]:
    """Canonical one-line-per-record serialization of a stage."""
    from repro.scanners.io import dump_record
    from repro.scanners.results import SynRecord

    lines = []
    for record in getattr(campaign, stage):
        if isinstance(record, SynRecord):
            # SYN records have no JSONL schema (they never leave the
            # pipeline); a sorted-key literal dict is equally canonical.
            payload = {"address": str(record.address), "open": record.open, "port": record.port}
        else:
            payload = dump_record(record)
        lines.append(json.dumps(payload, sort_keys=True))
    return lines


def run_differential(
    seed: int = 9000,
    week: int = 18,
    scale_addresses: int = 100_000,
    workers: int = 2,
) -> DifferentialResult:
    """Run one campaign serially and with ``workers`` shards, then diff.

    ``scale_addresses`` is the world-scale divisor (larger = smaller
    world); the default matches the observability test scale so every
    stage still produces records while both runs stay fast.
    """
    from repro.experiments.campaign import Campaign, CampaignConfig
    from repro.internet.providers import Scale
    from repro.observability.report import render_metrics_json

    config = CampaignConfig(
        week=week,
        scale=Scale(
            addresses=scale_addresses,
            ases=max(1, scale_addresses // 50),
            domains=scale_addresses,
        ),
        seed=seed,
    )
    serial = Campaign(config, workers=1)
    parallel = Campaign(config, workers=max(2, workers))
    result = DifferentialResult(workers=max(2, workers))
    try:
        serial.run_all_stages()
        parallel.run_all_stages()
    finally:
        parallel.close()
        serial.close()

    for stage in DIFF_STAGES:
        serial_lines = _record_lines(serial, stage)
        parallel_lines = _record_lines(parallel, stage)
        result.stage_records[stage] = len(serial_lines)
        result.records_compared += len(serial_lines)
        if serial_lines == parallel_lines:
            continue
        if len(serial_lines) != len(parallel_lines):
            result.mismatches.append(
                f"{stage}: {len(serial_lines)} records serial vs "
                f"{len(parallel_lines)} with {result.workers} workers"
            )
            continue
        for index, (ours, theirs) in enumerate(zip(serial_lines, parallel_lines)):
            if ours != theirs:
                result.mismatches.append(
                    f"{stage}[{index}]: serial {ours} != parallel {theirs}"
                )
                break

    result.metrics_identical = render_metrics_json(serial) == render_metrics_json(parallel)
    if not result.metrics_identical:
        result.mismatches.append("metrics.json bytes differ between serial and parallel")
    return result
