"""Differential oracle: serial vs sharded campaign byte-equality.

The parallel scan engine promises that ``--workers N`` changes nothing
but wall time: records come back in serial order and merged metrics
serialise byte-identically.  This module *replays* one campaign
configuration through both paths and diffs the serialized artefacts —
every stage's records (through the same
:func:`repro.scanners.io.dump_record` JSONL serializer the ``scan
--output`` path uses) and the deterministic ``metrics.json`` bytes.
Any divergence is reported with the first differing stage, index and
line, which is what makes a sharding regression debuggable rather than
a silent ordering flake.

:func:`run_fleet_differential` extends the oracle to the fleet
scheduler: one small matrix is run sequentially and through
``--fleet-jobs`` (shared world snapshot, persistent pool, concurrent
cells, ordered commits), and the *artefact files themselves* are
compared — raw warehouse database bytes and every per-cell
``metrics.json`` — because byte-identical files are exactly what the
fleet promises.
"""

from __future__ import annotations

import json
import sqlite3
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

__all__ = [
    "DifferentialResult",
    "DIFF_STAGES",
    "FleetDifferentialResult",
    "run_differential",
    "run_fleet_differential",
]

# Stage attributes compared record-for-record, in pipeline order.
DIFF_STAGES = (
    "all_dns_records",
    "zmap_v4",
    "zmap_v6",
    "syn_v4",
    "syn_v6",
    "goscanner_nosni_v4",
    "goscanner_nosni_v6",
    "goscanner_sni_v4",
    "goscanner_sni_v6",
    "qscan_nosni_v4",
    "qscan_nosni_v6",
    "qscan_sni_v4",
    "qscan_sni_v6",
)


@dataclass
class DifferentialResult:
    workers: int
    records_compared: int = 0
    stage_records: Dict[str, int] = field(default_factory=dict)
    mismatches: List[str] = field(default_factory=list)
    metrics_identical: bool = False

    @property
    def ok(self) -> bool:
        return self.metrics_identical and not self.mismatches


def _record_lines(campaign, stage: str) -> List[str]:
    """Canonical one-line-per-record serialization of a stage."""
    from repro.scanners.io import dump_record
    from repro.scanners.results import SynRecord

    lines = []
    for record in getattr(campaign, stage):
        if isinstance(record, SynRecord):
            # SYN records have no JSONL schema (they never leave the
            # pipeline); a sorted-key literal dict is equally canonical.
            payload = {"address": str(record.address), "open": record.open, "port": record.port}
        else:
            payload = dump_record(record)
        lines.append(json.dumps(payload, sort_keys=True))
    return lines


def run_differential(
    seed: int = 9000,
    week: int = 18,
    scale_addresses: int = 100_000,
    workers: int = 2,
) -> DifferentialResult:
    """Run one campaign serially and with ``workers`` shards, then diff.

    ``scale_addresses`` is the world-scale divisor (larger = smaller
    world); the default matches the observability test scale so every
    stage still produces records while both runs stay fast.
    """
    from repro.experiments.campaign import Campaign, CampaignConfig
    from repro.internet.providers import Scale
    from repro.observability.report import render_metrics_json

    config = CampaignConfig(
        week=week,
        scale=Scale(
            addresses=scale_addresses,
            ases=max(1, scale_addresses // 50),
            domains=scale_addresses,
        ),
        seed=seed,
    )
    serial = Campaign(config, workers=1)
    parallel = Campaign(config, workers=max(2, workers))
    result = DifferentialResult(workers=max(2, workers))
    try:
        serial.run_all_stages()
        parallel.run_all_stages()
    finally:
        parallel.close()
        serial.close()

    for stage in DIFF_STAGES:
        serial_lines = _record_lines(serial, stage)
        parallel_lines = _record_lines(parallel, stage)
        result.stage_records[stage] = len(serial_lines)
        result.records_compared += len(serial_lines)
        if serial_lines == parallel_lines:
            continue
        if len(serial_lines) != len(parallel_lines):
            result.mismatches.append(
                f"{stage}: {len(serial_lines)} records serial vs "
                f"{len(parallel_lines)} with {result.workers} workers"
            )
            continue
        for index, (ours, theirs) in enumerate(zip(serial_lines, parallel_lines)):
            if ours != theirs:
                result.mismatches.append(
                    f"{stage}[{index}]: serial {ours} != parallel {theirs}"
                )
                break

    result.metrics_identical = render_metrics_json(serial) == render_metrics_json(parallel)
    if not result.metrics_identical:
        result.mismatches.append("metrics.json bytes differ between serial and parallel")
    return result


@dataclass
class FleetDifferentialResult:
    """Outcome of the fleet-vs-sequential matrix replay."""

    jobs: int
    cells: int = 0
    db_identical: bool = False
    metrics_identical: bool = False
    world_reuse_hits: int = 0
    pool_respawns: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.db_identical and self.metrics_identical and not self.mismatches


def _run_matrix_to(directory: Path, matrix, fleet_jobs=None):
    """One matrix run into ``directory``; returns (db bytes, metrics map, result)."""
    from repro.experiments.matrix import run_matrix

    db_path = directory / "matrix.sqlite"
    metrics_dir = directory / "metrics"
    conn = sqlite3.connect(db_path)
    try:
        result = run_matrix(
            matrix, conn, metrics_dir=metrics_dir, fleet_jobs=fleet_jobs
        )
        conn.commit()
    finally:
        conn.close()
    metrics = {
        path.name: path.read_bytes()
        for path in sorted(metrics_dir.glob("*.metrics.json"))
    }
    return db_path.read_bytes(), metrics, result


def run_fleet_differential(
    seed: int = 9000,
    week: int = 18,
    scale_addresses: int = 200_000,
    jobs: int = 2,
) -> FleetDifferentialResult:
    """Replay a 2-cell matrix sequentially and via the fleet; diff files.

    The comparison is deliberately at the artefact level — raw sqlite
    database bytes and per-cell ``metrics.json`` bytes — because that
    file-level identity is the fleet's contract (shared world
    activation, concurrent scans and overlapped loads must all be
    invisible in what lands on disk).
    """
    from repro.experiments.matrix import MatrixConfig, grid_cells
    from repro.internet.providers import Scale

    matrix = MatrixConfig(
        cells=grid_cells(1, 2),
        scale=Scale(
            addresses=scale_addresses,
            ases=max(1, scale_addresses // 50),
            domains=scale_addresses,
        ),
        seed=seed,
        week=week,
    )
    result = FleetDifferentialResult(jobs=max(1, jobs), cells=len(matrix.cells))
    with tempfile.TemporaryDirectory(prefix="repro-fleet-diff-") as tmp:
        root = Path(tmp)
        (root / "seq").mkdir()
        (root / "fleet").mkdir()
        seq_db, seq_metrics, _ = _run_matrix_to(root / "seq", matrix)
        fleet_db, fleet_metrics, fleet_run = _run_matrix_to(
            root / "fleet", matrix, fleet_jobs=result.jobs
        )

    telemetry = fleet_run.fleet_telemetry or {}
    result.world_reuse_hits = telemetry.get("world_reuse_hits", 0)
    result.pool_respawns = telemetry.get("pool_respawns", 0)

    result.db_identical = seq_db == fleet_db
    if not result.db_identical:
        result.mismatches.append(
            "warehouse database bytes differ between sequential and fleet runs"
        )
    result.metrics_identical = seq_metrics == fleet_metrics
    if not result.metrics_identical:
        for name in sorted(set(seq_metrics) | set(fleet_metrics)):
            if seq_metrics.get(name) != fleet_metrics.get(name):
                result.mismatches.append(f"metrics file {name} differs")
    if result.world_reuse_hits != result.cells - 1:
        result.mismatches.append(
            f"world_reuse_hits {result.world_reuse_hits}"
            f" != cells-1 ({result.cells - 1})"
        )
    if result.pool_respawns != 0:
        result.mismatches.append(f"pool_respawns {result.pool_respawns} != 0")
    return result
