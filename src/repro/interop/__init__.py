"""QUIC interoperability testing (after Seemann & Iyengar, EPIQ '20).

The paper justifies its QScanner design by its compatibility "to most
implementations" on the Interop Runner (§3.4).  This package provides
the equivalent for the reproduction: a test-case matrix run between
client flavours and every simulated server implementation profile.
"""

from repro.interop.runner import InteropRunner, InteropResult, TEST_CASES, CLIENT_FLAVOURS

__all__ = ["InteropRunner", "InteropResult", "TEST_CASES", "CLIENT_FLAVOURS"]
