"""The interop matrix: client flavours x server implementations x cases.

Test cases mirror the public Interop Runner's core set:

- ``handshake``          — a plain 1-RTT handshake completes,
- ``transferparams``     — the server's transport parameters arrive,
- ``http3``              — an HTTP/3 HEAD exchange succeeds,
- ``retry``              — the handshake completes through a Retry,
- ``versionnegotiation`` — the client downgrades via a Version
  Negotiation packet and still completes,
- ``chacha20``           — the handshake runs over ChaCha20-Poly1305.

Servers are instantiated from the deployment implementation profiles
(:mod:`repro.server.profiles`); client flavours vary cipher-suite and
key-exchange preferences like distinct client stacks would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.crypto.rand import DeterministicRandom
from repro.http import h3
from repro.netsim.addresses import IPv4Address
from repro.netsim.topology import Network
from repro.quic.connection import (
    HandshakeTimeout,
    QuicClientConfig,
    QuicClientConnection,
    QuicServerBehaviour,
    QuicServerEndpoint,
    VersionMismatchError,
)
from repro.quic.errors import QuicError
from repro.quic.transport_params import TransportParameters
from repro.quic.versions import DRAFT_29, QUIC_V1, label_to_version
from repro.server.profiles import PROFILES, ImplementationProfile
from repro.tls.certificates import CertificateAuthority
from repro.tls.ciphersuites import (
    SUITE_AES_128_GCM_SHA256,
    SUITE_CHACHA20_POLY1305_SHA256,
    SUITE_SIM_SHA256,
)
from repro.tls.engine import TlsClientConfig, TlsServerConfig
from repro.tls.extensions import GROUP_SIM, GROUP_X25519

__all__ = ["InteropRunner", "InteropResult", "TEST_CASES", "CLIENT_FLAVOURS"]


@dataclass(frozen=True)
class ClientFlavour:
    name: str
    cipher_suites: Tuple = (SUITE_AES_128_GCM_SHA256,)
    groups: Tuple[int, ...] = (GROUP_X25519,)


CLIENT_FLAVOURS: Tuple[ClientFlavour, ...] = (
    ClientFlavour("aes-x25519"),
    ClientFlavour(
        "chacha-first",
        cipher_suites=(SUITE_CHACHA20_POLY1305_SHA256, SUITE_AES_128_GCM_SHA256),
    ),
    ClientFlavour(
        "fast-sim",
        cipher_suites=(SUITE_SIM_SHA256, SUITE_AES_128_GCM_SHA256),
        groups=(GROUP_SIM, GROUP_X25519),
    ),
)

TEST_CASES: Tuple[str, ...] = (
    "handshake",
    "transferparams",
    "http3",
    "retry",
    "versionnegotiation",
    "chacha20",
    "resumption",
    "zerortt",
)

_TICKET_KEY = b"interop-ticket-key"

# Profiles that cannot complete handshakes at all are excluded from the
# matrix (they model middlebox artefacts, not implementations).
_SERVER_PROFILES: Tuple[str, ...] = (
    "quiche",
    "google-quic",
    "gvs",
    "akamai-quic",
    "fastly-quic",
    "proxygen",
    "lsquic",
    "nginx-quic",
    "caddy",
    "h2o",
    "aioquic-ish",
)


@dataclass
class InteropResult:
    """The matrix: result[(client, server, case)] = passed?"""

    outcomes: Dict[Tuple[str, str, str], bool] = field(default_factory=dict)

    def passed(self, client: str, server: str, case: str) -> bool:
        return self.outcomes.get((client, server, case), False)

    def pass_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(self.outcomes.values()) / len(self.outcomes)

    def failures(self) -> List[Tuple[str, str, str]]:
        return sorted(key for key, ok in self.outcomes.items() if not ok)

    def render(self) -> str:
        lines = ["interop matrix (rows: server, columns: case; aggregated over clients)"]
        header = f"{'server':<14}" + "".join(f"{case[:12]:>14}" for case in TEST_CASES)
        lines.append(header)
        servers = sorted({server for _c, server, _t in self.outcomes})
        clients = sorted({client for client, _s, _t in self.outcomes})
        for server in servers:
            cells = []
            for case in TEST_CASES:
                results = [self.passed(client, server, case) for client in clients]
                cells.append("pass" if all(results) else ("part" if any(results) else "FAIL"))
            lines.append(f"{server:<14}" + "".join(f"{cell:>14}" for cell in cells))
        lines.append(f"overall pass rate: {self.pass_rate():.0%}")
        return "\n".join(lines)


class InteropRunner:
    """Runs the interop matrix on a dedicated simulated network."""

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._ca = CertificateAuthority(seed=f"interop-{seed}", key_bits=512)
        self._cert, self._key = self._ca.issue(
            "interop.example", ["interop.example"], key_bits=512
        )

    def _server_behaviour(
        self, profile: ImplementationProfile, case: str
    ) -> QuicServerBehaviour:
        suites = (
            SUITE_AES_128_GCM_SHA256,
            SUITE_CHACHA20_POLY1305_SHA256,
            SUITE_SIM_SHA256,
        )

        def select_certificate(sni):
            return [self._cert, self._ca.root], self._key

        def app_handler(alpn, stream_id, data):
            if stream_id % 4 != 0:
                return None
            try:
                h3.decode_request(data)
            except h3.H3Error:
                return None
            headers = [("server", profile.server_header)] if profile.server_header else []
            return h3.encode_response(200, headers)

        versions: Sequence[int] = (QUIC_V1, DRAFT_29)
        if case == "versionnegotiation":
            versions = (QUIC_V1,)
        return QuicServerBehaviour(
            tls=TlsServerConfig(
                select_certificate=select_certificate,
                alpn_protocols=("h3", "h3-29"),
                cipher_suites=suites,
                groups=(GROUP_X25519, GROUP_SIM),
                transport_params=TransportParameters(
                    initial_max_data=1_048_576,
                    initial_max_stream_data_bidi_local=262_144,
                    initial_max_stream_data_bidi_remote=262_144,
                    initial_max_stream_data_uni=262_144,
                    initial_max_streams_bidi=16,
                ),
                echo_sni=profile.echo_sni_quic,
                ticket_key=_TICKET_KEY if case in ("resumption", "zerortt") else None,
                max_early_data=65536 if case == "zerortt" else 0,
            ),
            advertised_versions=versions,
            respond_to_forced_negotiation=profile.respond_to_forced_negotiation,
            respond_without_padding=profile.respond_without_padding,
            alert_reason_text=profile.alert_reason,
            app_handler=app_handler,
            stateless_retry=(case == "retry"),
        )

    def _client_config(self, flavour: ClientFlavour, case: str) -> QuicClientConfig:
        suites = flavour.cipher_suites
        if case == "chacha20":
            suites = (SUITE_CHACHA20_POLY1305_SHA256,)
        versions: Sequence[int] = (QUIC_V1,)
        if case == "versionnegotiation":
            versions = (label_to_version("draft-32"), QUIC_V1)
        streams = {}
        if case == "http3":
            streams = {
                0: h3.encode_head_request("interop.example"),
                2: h3.encode_control_stream(),
            }
        return QuicClientConfig(
            versions=versions,
            tls=TlsClientConfig(
                server_name="interop.example",
                alpn=("h3", "h3-29"),
                cipher_suites=suites,
                groups=flavour.groups,
                trusted_roots=(self._ca.root,),
            ),
            application_streams=streams,
            timeout=3.0,
            collect_session_ticket=(case == "handshake-with-ticket"),
        )

    def _check(self, case: str, result) -> bool:
        if case == "transferparams":
            return (
                result.transport_params is not None
                and result.transport_params.initial_max_data == 1_048_576
            )
        if case == "http3":
            data = result.streams.get(0)
            if not data:
                return False
            try:
                return h3.decode_response(data).status == 200
            except h3.H3Error:
                return False
        if case == "versionnegotiation":
            return result.version == QUIC_V1 and result.version_negotiation_seen
        if case == "chacha20":
            return result.tls.cipher_suite == "TLS_CHACHA20_POLY1305_SHA256"
        return True  # handshake / retry: reaching here means success

    def run(
        self,
        clients: Sequence[ClientFlavour] = CLIENT_FLAVOURS,
        servers: Sequence[str] = _SERVER_PROFILES,
        cases: Sequence[str] = TEST_CASES,
    ) -> InteropResult:
        result = InteropResult()
        client_address = IPv4Address.parse("198.51.100.77")
        for server_name in servers:
            profile = PROFILES[server_name]
            for case in cases:
                network = Network(seed=self._seed)
                server_address = IPv4Address.parse("192.0.2.77")
                network.bind_udp(
                    server_address,
                    443,
                    QuicServerEndpoint(
                        self._server_behaviour(profile, case),
                        seed=("interop", server_name, case),
                    ),
                )
                for flavour in clients:
                    try:
                        if case in ("resumption", "zerortt"):
                            passed = self._run_two_connection_case(
                                network, client_address, server_address, flavour, case, server_name
                            )
                        else:
                            connection = QuicClientConnection(
                                network,
                                client_address,
                                server_address,
                                443,
                                self._client_config(flavour, case),
                                DeterministicRandom(
                                    ("interop", flavour.name, server_name, case)
                                ),
                            )
                            passed = self._check(case, connection.connect())
                    except (HandshakeTimeout, VersionMismatchError, QuicError):
                        passed = False
                    result.outcomes[(flavour.name, server_name, case)] = passed
        return result

    def _run_two_connection_case(
        self, network, client_address, server_address, flavour, case, server_name
    ) -> bool:
        """Resumption / 0-RTT: a warm-up connection supplies the ticket."""
        warmup = QuicClientConnection(
            network,
            client_address,
            server_address,
            443,
            self._client_config(flavour, "handshake-with-ticket"),
            DeterministicRandom(("interop-warm", flavour.name, server_name, case)),
        )
        ticket = warmup.connect().session_ticket
        if ticket is None:
            return False
        config = self._client_config(flavour, case)
        config.tls.session_ticket = ticket
        if case == "zerortt":
            config.tls.offer_early_data = True
            config.use_early_data = True
            config.application_streams = {0: h3.encode_head_request("interop.example")}
        second = QuicClientConnection(
            network,
            client_address,
            server_address,
            443,
            config,
            DeterministicRandom(("interop-resume", flavour.name, server_name, case)),
        )
        outcome = second.connect()
        if case == "resumption":
            return outcome.tls.resumed
        return outcome.tls.resumed and outcome.early_data_accepted and bool(outcome.streams)
