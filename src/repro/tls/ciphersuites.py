"""TLS 1.3 cipher suites.

TLS 1.3 defines five suites; QUIC limits the choice to four and only
three are mandatory (paper §5.1).  We implement the two AES-GCM suites
with real cryptography plus one private-use suite
(``TLS_SIM_SHA256``) backed by the fast simulated AEAD used between
this repository's own endpoints at campaign scale (DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.crypto.aead import (
    AeadAes128Gcm,
    AeadSim,
    aead_for_suite,
    header_mask_aes,
    header_mask_chacha,
    header_mask_sim,
)

__all__ = [
    "CipherSuite",
    "SUITE_AES_128_GCM_SHA256",
    "SUITE_AES_256_GCM_SHA384",
    "SUITE_CHACHA20_POLY1305_SHA256",
    "SUITE_SIM_SHA256",
    "suite_by_id",
    "ALL_SUITES",
]


@dataclass(frozen=True)
class CipherSuite:
    id: int
    name: str
    hash_name: str
    hash_len: int
    key_len: int
    iv_len: int = 12

    def aead(self, key: bytes):
        return aead_for_suite(self.name, key)

    def header_mask_fn(self) -> Callable[[bytes, bytes], bytes]:
        if self.name == "TLS_SIM_SHA256":
            return header_mask_sim
        if self.name == "TLS_CHACHA20_POLY1305_SHA256":
            return header_mask_chacha
        return header_mask_aes


SUITE_AES_128_GCM_SHA256 = CipherSuite(
    id=0x1301, name="TLS_AES_128_GCM_SHA256", hash_name="sha256", hash_len=32, key_len=16
)
SUITE_AES_256_GCM_SHA384 = CipherSuite(
    id=0x1302, name="TLS_AES_256_GCM_SHA384", hash_name="sha384", hash_len=48, key_len=32
)
SUITE_CHACHA20_POLY1305_SHA256 = CipherSuite(
    id=0x1303,
    name="TLS_CHACHA20_POLY1305_SHA256",
    hash_name="sha256",
    hash_len=32,
    key_len=32,
)
# Private-use code point (0xFFxx range): the fast simulation suite.
SUITE_SIM_SHA256 = CipherSuite(
    id=0xFFD0, name="TLS_SIM_SHA256", hash_name="sha256", hash_len=32, key_len=16
)

ALL_SUITES = (
    SUITE_AES_128_GCM_SHA256,
    SUITE_AES_256_GCM_SHA384,
    SUITE_CHACHA20_POLY1305_SHA256,
    SUITE_SIM_SHA256,
)

_BY_ID: Dict[int, CipherSuite] = {suite.id: suite for suite in ALL_SUITES}


def suite_by_id(suite_id: int) -> Optional[CipherSuite]:
    return _BY_ID.get(suite_id)
