"""TLS extensions (RFC 8446 §4.2 plus RFC 9001 §8.2).

Encodes and decodes the extensions the paper's scanners send and
compare: server_name (SNI), ALPN, supported_versions, supported_groups,
key_share, signature_algorithms and quic_transport_parameters.  The
Table 5 "Extensions" row compares the *sets of extensions* servers
return on QUIC vs TLS-over-TCP, so servers track exactly which
extensions they emit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ExtensionType",
    "encode_extensions",
    "decode_extensions",
    "encode_sni",
    "decode_sni",
    "encode_alpn",
    "decode_alpn",
    "encode_supported_versions",
    "encode_key_share",
    "decode_key_share",
    "encode_supported_groups",
    "GROUP_X25519",
    "GROUP_SECP256R1",
    "GROUP_SIM",
    "TLS13",
]

TLS13 = 0x0304
GROUP_X25519 = 0x001D
GROUP_SECP256R1 = 0x0017
# Private-use group id: the fast hash-based simulated DH used between
# this repository's own endpoints at campaign scale (see DESIGN.md §5).
GROUP_SIM = 0xFF42


class ExtensionType:
    SERVER_NAME = 0
    SUPPORTED_GROUPS = 10
    SIGNATURE_ALGORITHMS = 13
    ALPN = 16
    PRE_SHARED_KEY = 41
    EARLY_DATA = 42
    SUPPORTED_VERSIONS = 43
    PSK_KEY_EXCHANGE_MODES = 45
    KEY_SHARE = 51
    QUIC_TRANSPORT_PARAMETERS = 0x39
    QUIC_TRANSPORT_PARAMETERS_DRAFT = 0xFFA5

    NAMES = {
        0: "server_name",
        10: "supported_groups",
        13: "signature_algorithms",
        16: "alpn",
        41: "pre_shared_key",
        42: "early_data",
        43: "supported_versions",
        45: "psk_key_exchange_modes",
        51: "key_share",
        0x39: "quic_transport_parameters",
        0xFFA5: "quic_transport_parameters(draft)",
    }

    @classmethod
    def name(cls, ext_type: int) -> str:
        return cls.NAMES.get(ext_type, f"ext_{ext_type}")


def encode_extensions(extensions: List[Tuple[int, bytes]]) -> bytes:
    body = b"".join(
        ext_type.to_bytes(2, "big") + len(data).to_bytes(2, "big") + data
        for ext_type, data in extensions
    )
    return len(body).to_bytes(2, "big") + body


def decode_extensions(data: bytes, offset: int = 0) -> Tuple[List[Tuple[int, bytes]], int]:
    total = int.from_bytes(data[offset : offset + 2], "big")
    offset += 2
    end = offset + total
    extensions: List[Tuple[int, bytes]] = []
    while offset < end:
        ext_type = int.from_bytes(data[offset : offset + 2], "big")
        length = int.from_bytes(data[offset + 2 : offset + 4], "big")
        extensions.append((ext_type, data[offset + 4 : offset + 4 + length]))
        offset += 4 + length
    if offset != end:
        raise ValueError("malformed extension block")
    return extensions, offset


# -- server_name -----------------------------------------------------------


def encode_sni(hostname: str) -> bytes:
    name = hostname.encode("idna") if any(ord(c) > 127 for c in hostname) else hostname.encode()
    entry = b"\x00" + len(name).to_bytes(2, "big") + name
    return (len(entry)).to_bytes(2, "big") + entry


def decode_sni(data: bytes) -> Optional[str]:
    if not data:
        return None  # a server's SNI ack is an empty extension
    offset = 2
    if data[offset] != 0:
        return None
    length = int.from_bytes(data[offset + 1 : offset + 3], "big")
    return data[offset + 3 : offset + 3 + length].decode()


# -- ALPN --------------------------------------------------------------------


def encode_alpn(protocols: List[str]) -> bytes:
    body = b"".join(
        bytes([len(p.encode())]) + p.encode() for p in protocols
    )
    return len(body).to_bytes(2, "big") + body


def decode_alpn(data: bytes) -> List[str]:
    length = int.from_bytes(data[0:2], "big")
    offset = 2
    end = 2 + length
    protocols = []
    while offset < end:
        plen = data[offset]
        protocols.append(data[offset + 1 : offset + 1 + plen].decode())
        offset += 1 + plen
    return protocols


# -- supported_versions / groups ----------------------------------------------


def encode_supported_versions(versions: List[int], is_client: bool) -> bytes:
    if is_client:
        body = b"".join(v.to_bytes(2, "big") for v in versions)
        return bytes([len(body)]) + body
    return versions[0].to_bytes(2, "big")


def encode_supported_groups(groups: List[int]) -> bytes:
    body = b"".join(g.to_bytes(2, "big") for g in groups)
    return len(body).to_bytes(2, "big") + body


# -- pre_shared_key (RFC 8446 §4.2.11) -------------------------------------------


def encode_psk_client(identity: bytes, binder: bytes, obfuscated_age: int = 0) -> bytes:
    """Client form: one PskIdentity plus one binder entry."""
    identities = (
        len(identity).to_bytes(2, "big") + identity + obfuscated_age.to_bytes(4, "big")
    )
    binders = bytes([len(binder)]) + binder
    return (
        len(identities).to_bytes(2, "big")
        + identities
        + len(binders).to_bytes(2, "big")
        + binders
    )


def decode_psk_client(data: bytes) -> Tuple[bytes, int, bytes]:
    """Returns (identity, obfuscated_age, binder) of the first entry."""
    identities_len = int.from_bytes(data[0:2], "big")
    offset = 2
    identity_len = int.from_bytes(data[offset : offset + 2], "big")
    identity = data[offset + 2 : offset + 2 + identity_len]
    age = int.from_bytes(
        data[offset + 2 + identity_len : offset + 6 + identity_len], "big"
    )
    offset = 2 + identities_len
    offset += 2  # binders list length
    binder_len = data[offset]
    binder = data[offset + 1 : offset + 1 + binder_len]
    return identity, age, binder


def psk_binders_serialized_length(binder: bytes) -> int:
    """Bytes occupied by the binders list (for CH truncation)."""
    return 2 + 1 + len(binder)


def encode_psk_server(selected_identity: int = 0) -> bytes:
    return selected_identity.to_bytes(2, "big")


def encode_psk_modes(modes: Sequence[int] = (1,)) -> bytes:
    """psk_key_exchange_modes; mode 1 = psk_dhe_ke."""
    return bytes([len(modes)]) + bytes(modes)


# -- key_share ------------------------------------------------------------------


def encode_key_share(shares: List[Tuple[int, bytes]], is_client: bool) -> bytes:
    entries = b"".join(
        group.to_bytes(2, "big") + len(key).to_bytes(2, "big") + key
        for group, key in shares
    )
    if is_client:
        return len(entries).to_bytes(2, "big") + entries
    return entries  # server sends a single KeyShareEntry


def decode_key_share(data: bytes, is_client: bool) -> List[Tuple[int, bytes]]:
    shares: List[Tuple[int, bytes]] = []
    if is_client:
        offset = 2
        end = 2 + int.from_bytes(data[0:2], "big")
    else:
        offset = 0
        end = len(data)
    while offset < end:
        group = int.from_bytes(data[offset : offset + 2], "big")
        length = int.from_bytes(data[offset + 2 : offset + 4], "big")
        shares.append((group, data[offset + 4 : offset + 4 + length]))
        offset += 4 + length
    return shares
