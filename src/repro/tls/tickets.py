"""Session tickets and the NewSessionTicket message (RFC 8446 §4.6.1).

Servers issue tickets after a completed handshake; a client presenting
one resumes with a PSK handshake (no certificate flight) and may send
0-RTT early data.  The ticket blob is self-contained: the server seals
(PSK, suite id, ALPN, early-data permission) under its ticket key, so
resumption is stateless server-side.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.aead import AeadError, AeadSim
from repro.crypto.rand import DeterministicRandom

__all__ = [
    "SessionTicket",
    "seal_ticket",
    "open_ticket",
    "encode_new_session_ticket",
    "decode_new_session_ticket",
    "NEW_SESSION_TICKET",
]

NEW_SESSION_TICKET = 4  # handshake message type


@dataclass
class SessionTicket:
    """Everything a client needs to resume a session."""

    identity: bytes  # the opaque blob presented back to the server
    psk: bytes
    cipher_suite_id: int
    hash_name: str
    server_name: Optional[str] = None
    alpn: Optional[str] = None
    max_early_data: int = 0
    ticket_nonce: bytes = b"\x00"

    @property
    def allows_early_data(self) -> bool:
        return self.max_early_data > 0


def seal_ticket(
    ticket_key: bytes,
    psk: bytes,
    cipher_suite_id: int,
    alpn: Optional[str],
    max_early_data: int,
    rng: DeterministicRandom,
) -> bytes:
    """Seal ticket state into an opaque identity blob (nonce || box)."""
    state = json.dumps(
        {
            "psk": psk.hex(),
            "suite": cipher_suite_id,
            "alpn": alpn,
            "med": max_early_data,
        },
        sort_keys=True,
    ).encode()
    nonce = rng.token(12)
    return nonce + AeadSim(ticket_key).seal(nonce, state, b"ticket")


def open_ticket(
    ticket_key: bytes, identity: bytes
) -> Optional[Tuple[bytes, int, Optional[str], int]]:
    """Open an identity blob; returns (psk, suite id, alpn, max_early_data)."""
    if len(identity) < 12 + 16:
        return None
    nonce, box = identity[:12], identity[12:]
    try:
        state = json.loads(AeadSim(ticket_key).open(nonce, box, b"ticket"))
    except (AeadError, ValueError):
        return None
    try:
        return (
            bytes.fromhex(state["psk"]),
            int(state["suite"]),
            state["alpn"],
            int(state["med"]),
        )
    except (KeyError, ValueError, TypeError):
        return None


# -- wire format ------------------------------------------------------------


def encode_new_session_ticket(
    ticket: bytes,
    ticket_nonce: bytes = b"\x00",
    lifetime: int = 86_400,
    age_add: int = 0,
    max_early_data: int = 0,
) -> bytes:
    """Frame a NewSessionTicket handshake message."""
    extensions = b""
    if max_early_data:
        ext_body = max_early_data.to_bytes(4, "big")
        extensions = (42).to_bytes(2, "big") + len(ext_body).to_bytes(2, "big") + ext_body
    body = (
        lifetime.to_bytes(4, "big")
        + age_add.to_bytes(4, "big")
        + bytes([len(ticket_nonce)])
        + ticket_nonce
        + len(ticket).to_bytes(2, "big")
        + ticket
        + len(extensions).to_bytes(2, "big")
        + extensions
    )
    return bytes([NEW_SESSION_TICKET]) + len(body).to_bytes(3, "big") + body


def decode_new_session_ticket(body: bytes) -> Tuple[bytes, bytes, int]:
    """Parse a NewSessionTicket body; returns (ticket, nonce, max_early_data)."""
    lifetime = int.from_bytes(body[0:4], "big")
    del lifetime  # informational only
    offset = 8
    nonce_len = body[offset]
    nonce = body[offset + 1 : offset + 1 + nonce_len]
    offset += 1 + nonce_len
    ticket_len = int.from_bytes(body[offset : offset + 2], "big")
    ticket = body[offset + 2 : offset + 2 + ticket_len]
    offset += 2 + ticket_len
    ext_total = int.from_bytes(body[offset : offset + 2], "big")
    offset += 2
    end = offset + ext_total
    max_early_data = 0
    while offset < end:
        ext_type = int.from_bytes(body[offset : offset + 2], "big")
        ext_len = int.from_bytes(body[offset + 2 : offset + 4], "big")
        if ext_type == 42 and ext_len == 4:
            max_early_data = int.from_bytes(body[offset + 4 : offset + 8], "big")
        offset += 4 + ext_len
    return ticket, nonce, max_early_data
