"""TLS 1.3 handshake engine: client and server sessions.

The engine operates on framed handshake messages and is transport
agnostic: the QUIC connection machinery feeds it CRYPTO-frame data and
pulls key material for packet protection; the TCP record layer
(:mod:`repro.tls.record`) wraps the same messages in records.

Mirroring the paper's methodology (§5.1), the scanners send the same
Client Hello over QUIC and over TCP: cipher suites in identical order,
the X25519 key-share, optional SNI and ALPN — QUIC merely adds the
``quic_transport_parameters`` extension.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.crypto.rand import DeterministicRandom
from repro.crypto.rsa import RsaPrivateKey, SignatureError
from repro.crypto.x25519 import x25519, x25519_base
from repro.quic.transport_params import TransportParameters
from repro.tls.alerts import AlertDescription, AlertError
from repro.tls.certificates import Certificate, verify_chain
from repro.tls.ciphersuites import (
    ALL_SUITES,
    CipherSuite,
    SUITE_AES_128_GCM_SHA256,
    suite_by_id,
)
from repro.tls.extensions import (
    ExtensionType,
    GROUP_SECP256R1,
    GROUP_SIM,
    GROUP_X25519,
    TLS13,
    decode_alpn,
    decode_key_share,
    decode_psk_client,
    decode_sni,
    encode_alpn,
    encode_key_share,
    encode_psk_client,
    encode_psk_modes,
    encode_psk_server,
    encode_sni,
    encode_supported_groups,
    encode_supported_versions,
    psk_binders_serialized_length,
)
from repro.tls.tickets import (
    SessionTicket,
    decode_new_session_ticket,
    encode_new_session_ticket,
    open_ticket,
    seal_ticket,
)
from repro.tls.keyschedule import KeySchedule, TrafficSecrets
from repro.tls.messages import (
    CertificateMessage,
    CertificateVerify,
    ClientHello,
    EncryptedExtensions,
    Finished,
    HandshakeType,
    MessageDecodeError,
    ServerHello,
    iter_messages,
)

__all__ = [
    "TlsClientConfig",
    "TlsServerConfig",
    "TlsClientSession",
    "TlsServerSession",
    "NegotiatedSession",
    "ServerFlight",
    "GROUP_NAMES",
    "generate_key_shares",
]

GROUP_NAMES = {
    GROUP_X25519: "x25519",
    GROUP_SECP256R1: "secp256r1(sim)",
    GROUP_SIM: "sim-dh",
}


def _group_shared_secret(
    group: int, own_private: bytes, own_public: bytes, peer_public: bytes, is_client: bool
) -> bytes:
    if group == GROUP_X25519:
        return x25519(own_private, peer_public)
    # Simulated non-X25519 group: both sides hash the two public values
    # in client/server order.  Not secure — models the handful of
    # deployments choosing other curves (paper §5.1, 206 targets).
    client_pub, server_pub = (own_public, peer_public) if is_client else (peer_public, own_public)
    return hashlib.sha256(b"sim-ecdh" + client_pub + server_pub).digest()


# SignatureScheme for CertificateVerify under the simulated suite: a
# hash binding of (certificate public key, signed content), checkable
# from the public key alone.  Not a real signature — the same explicit
# trade as the sim AEAD and sim-ecdh group above, and only negotiated
# between our own endpoints (TLS_SIM_SHA256).  Real RSA PKCS#1 v1.5
# still runs under TLS_AES_128_GCM_SHA256 and for every certificate
# chain signature.
_SIG_SCHEME_SIM = 0xFF01


@lru_cache(maxsize=4096)
def _pubkey_bytes(n: int, e: int) -> bytes:
    return n.to_bytes((n.bit_length() + 7) // 8, "big") + e.to_bytes(4, "big")


def _sim_certificate_signature(public_key, content: bytes) -> bytes:
    return hashlib.sha256(
        b"sim-cv" + _pubkey_bytes(public_key.n, public_key.e) + content
    ).digest()


def generate_key_shares(
    groups: Sequence[int], rng: DeterministicRandom
) -> Tuple[Tuple[int, bytes, bytes], ...]:
    """(group, private, public) key shares for the offered groups."""
    shares = []
    for group in groups:
        private = rng.token(32)
        if group == GROUP_X25519:
            public = x25519_base(private)
        else:
            public = hashlib.sha256(b"sim-pub" + private).digest() + private[:1]
        shares.append((group, private, public))
    return tuple(shares)


@dataclass
class NegotiatedSession:
    """Everything a scanner records about a completed TLS handshake."""

    tls_version: str = "TLS1.3"
    cipher_suite: str = ""
    key_exchange_group: str = ""
    alpn: Optional[str] = None
    server_certificates: List[Certificate] = field(default_factory=list)
    server_extensions: List[str] = field(default_factory=list)
    sni_echoed: bool = False
    peer_transport_params: Optional[TransportParameters] = None
    certificate_errors: List[str] = field(default_factory=list)
    resumed: bool = False  # PSK handshake (no certificate flight)
    early_data_accepted: bool = False
    session_ticket: Optional[SessionTicket] = None  # issued by the server

    @property
    def certificate_fingerprint(self) -> Optional[str]:
        if not self.server_certificates:
            return None
        return self.server_certificates[0].fingerprint()


@dataclass
class TlsClientConfig:
    server_name: Optional[str] = None
    alpn: Sequence[str] = ()
    cipher_suites: Sequence[CipherSuite] = (SUITE_AES_128_GCM_SHA256,)
    groups: Sequence[int] = (GROUP_X25519,)
    transport_params: Optional[TransportParameters] = None  # set => QUIC mode
    trusted_roots: Sequence[Certificate] = ()
    validation_week: Optional[int] = None
    # Resumption (RFC 8446 §4.2.11): present this ticket as a PSK.
    session_ticket: Optional[SessionTicket] = None
    offer_early_data: bool = False
    # Batched-scan accelerator: (group -> (private, public)) key shares
    # generated once per scan batch instead of per connection — the
    # ephemeral-key reuse real scanners apply at campaign rates.  The
    # handshake secrets still differ per connection (fresh randoms and
    # server shares enter the transcript and key schedule).
    static_key_shares: Optional[Tuple[Tuple[int, bytes, bytes], ...]] = None


@dataclass
class TlsServerConfig:
    """Server-side TLS behaviour, including the paper's CDN quirks."""

    # (sni) -> (chain, key); raising AlertError models SNI-required
    # deployments answering alert 0x28.
    select_certificate: Callable[
        [Optional[str]], Tuple[List[Certificate], RsaPrivateKey]
    ] = None  # type: ignore[assignment]
    alpn_protocols: Sequence[str] = ()
    cipher_suites: Sequence[CipherSuite] = (SUITE_AES_128_GCM_SHA256,)
    groups: Sequence[int] = (GROUP_X25519,)
    preferred_group: int = GROUP_X25519
    transport_params: Optional[TransportParameters] = None
    echo_sni: bool = True  # RFC 6066 ack when SNI used for selection
    require_alpn: bool = False
    no_sni_drops_alpn: bool = False  # error vhost negotiates no ALPN
    # Resumption: setting a ticket key enables PSK handshakes and
    # NewSessionTicket issuance; max_early_data > 0 accepts 0-RTT.
    ticket_key: Optional[bytes] = None
    max_early_data: int = 0


class _SessionBase:
    def __init__(self, rng: DeterministicRandom):
        self._rng = rng
        self.schedule: Optional[KeySchedule] = None
        self.suite: Optional[CipherSuite] = None
        self.handshake_secrets: Optional[TrafficSecrets] = None
        self.application_secrets: Optional[TrafficSecrets] = None
        self.result = NegotiatedSession()


class TlsClientSession(_SessionBase):
    """Client side of a TLS 1.3 handshake."""

    def __init__(self, config: TlsClientConfig, rng: Optional[DeterministicRandom] = None):
        super().__init__(rng or DeterministicRandom("tls-client"))
        self.config = config
        self._private_keys: Dict[int, bytes] = {}
        self._public_keys: Dict[int, bytes] = {}
        self._client_hello_bytes: Optional[bytes] = None
        self._server_finished_seen = False
        self.handshake_complete = False
        self._psk_accepted = False
        # client_early_traffic_secret, available right after the CH
        # when a ticket permitting early data was offered (0-RTT).
        self.early_traffic_secret: Optional[bytes] = None

    # -- flight 1 -------------------------------------------------------------
    def client_hello(self) -> bytes:
        config = self.config
        shares: List[Tuple[int, bytes]] = []
        key_shares = config.static_key_shares
        if key_shares is None:
            key_shares = generate_key_shares(config.groups, self._rng)
        for group, private, public in key_shares:
            self._private_keys[group] = private
            self._public_keys[group] = public
            shares.append((group, public))
        extensions: List[Tuple[int, bytes]] = []
        if config.server_name:
            extensions.append((ExtensionType.SERVER_NAME, encode_sni(config.server_name)))
        extensions.append(
            (ExtensionType.SUPPORTED_GROUPS, encode_supported_groups(list(config.groups)))
        )
        extensions.append((ExtensionType.SIGNATURE_ALGORITHMS, b"\x00\x02\x04\x01"))
        if config.alpn:
            extensions.append((ExtensionType.ALPN, encode_alpn(list(config.alpn))))
        extensions.append(
            (ExtensionType.SUPPORTED_VERSIONS, encode_supported_versions([TLS13], True))
        )
        extensions.append((ExtensionType.KEY_SHARE, encode_key_share(shares, True)))
        if config.transport_params is not None:
            extensions.append(
                (
                    ExtensionType.QUIC_TRANSPORT_PARAMETERS,
                    config.transport_params.encode(),
                )
            )
        ticket = config.session_ticket
        offering_early = bool(
            ticket and config.offer_early_data and ticket.allows_early_data
        )
        if ticket is not None:
            extensions.append(
                (ExtensionType.PSK_KEY_EXCHANGE_MODES, encode_psk_modes())
            )
            if offering_early:
                extensions.append((ExtensionType.EARLY_DATA, b""))
            # pre_shared_key MUST be the last extension; build the hello
            # with a zero binder first, then fill in the real binder
            # over the truncated ClientHello (RFC 8446 §4.2.11.2).
            import hashlib as _hashlib

            hash_len = _hashlib.new(ticket.hash_name).digest_size
            extensions.append(
                (
                    ExtensionType.PRE_SHARED_KEY,
                    encode_psk_client(ticket.identity, bytes(hash_len)),
                )
            )
        hello = ClientHello(
            random=self._rng.token(32),
            cipher_suites=[suite.id for suite in config.cipher_suites],
            extensions=extensions,
            legacy_session_id=self._rng.token(32),
        )
        framed = hello.encode()
        if ticket is not None:
            import hashlib as _hashlib

            hash_len = _hashlib.new(ticket.hash_name).digest_size
            truncated = framed[: -psk_binders_serialized_length(bytes(hash_len))]
            binder_schedule = KeySchedule(ticket.hash_name, psk=ticket.psk)
            binder = binder_schedule.psk_binder(truncated)
            framed = framed[: -hash_len] + binder
            if offering_early:
                early_schedule = KeySchedule(ticket.hash_name, psk=ticket.psk)
                early_schedule.update_transcript(framed)
                self.early_traffic_secret = early_schedule.early_traffic_secret()
        self._client_hello_bytes = framed
        return framed

    # -- flight 2 ---------------------------------------------------------------
    def process_server_hello(self, framed: bytes) -> None:
        """Process the ServerHello; handshake secrets become available."""
        messages = list(iter_messages(framed))
        if len(messages) != 1 or messages[0][0] != HandshakeType.SERVER_HELLO:
            raise AlertError(AlertDescription.UNEXPECTED_MESSAGE, "expected ServerHello")
        _, body, raw = messages[0]
        hello = ServerHello.decode(body)
        suite = suite_by_id(hello.cipher_suite)
        if suite is None or suite.id not in [s.id for s in self.config.cipher_suites]:
            raise AlertError(AlertDescription.ILLEGAL_PARAMETER, "suite not offered")
        self.suite = suite
        self.result.cipher_suite = suite.name
        self.result.server_extensions.extend(
            ExtensionType.name(etype) for etype, _ in hello.extensions
        )
        key_share_data = hello.extension(ExtensionType.KEY_SHARE)
        if key_share_data is None:
            raise AlertError(AlertDescription.MISSING_EXTENSION, "no key_share")
        [(group, server_public)] = decode_key_share(key_share_data, False)
        if group not in self._private_keys:
            raise AlertError(AlertDescription.ILLEGAL_PARAMETER, "group not offered")
        self.result.key_exchange_group = GROUP_NAMES.get(group, f"group_{group}")
        shared = _group_shared_secret(
            group,
            self._private_keys[group],
            self._public_keys[group],
            server_public,
            is_client=True,
        )
        # Did the server accept our PSK offer?
        ticket = self.config.session_ticket
        self._psk_accepted = (
            ticket is not None and hello.extension(ExtensionType.PRE_SHARED_KEY) is not None
        )
        self.result.resumed = self._psk_accepted
        schedule = KeySchedule(
            suite.hash_name, psk=ticket.psk if self._psk_accepted and ticket else None
        )
        assert self._client_hello_bytes is not None
        schedule.update_transcript(self._client_hello_bytes)
        schedule.update_transcript(raw)
        schedule.set_shared_secret(shared)
        self.schedule = schedule
        self.handshake_secrets = schedule.handshake_traffic_secrets()

    def process_server_flight(self, framed: bytes) -> bytes:
        """Process EE..Finished; returns the framed client Finished.

        Application secrets become available afterwards; the negotiated
        session summary is in :attr:`result`.
        """
        if self.schedule is None or self.suite is None:
            raise AlertError(AlertDescription.UNEXPECTED_MESSAGE, "ServerHello not processed")
        schedule = self.schedule
        server_cert: Optional[CertificateMessage] = None
        for msg_type, body, raw in iter_messages(framed):
            if msg_type == HandshakeType.ENCRYPTED_EXTENSIONS:
                ee = EncryptedExtensions.decode(body)
                self.result.server_extensions.extend(
                    ExtensionType.name(etype) for etype, _ in ee.extensions
                )
                alpn_data = ee.extension(ExtensionType.ALPN)
                if alpn_data is not None:
                    protocols = decode_alpn(alpn_data)
                    self.result.alpn = protocols[0] if protocols else None
                sni_data = ee.extension(ExtensionType.SERVER_NAME)
                self.result.sni_echoed = sni_data is not None
                self.result.early_data_accepted = (
                    ee.extension(ExtensionType.EARLY_DATA) is not None
                )
                tp_data = ee.extension(
                    ExtensionType.QUIC_TRANSPORT_PARAMETERS
                ) or ee.extension(ExtensionType.QUIC_TRANSPORT_PARAMETERS_DRAFT)
                if tp_data is not None:
                    self.result.peer_transport_params = TransportParameters.decode(tp_data)
                schedule.update_transcript(raw)
            elif msg_type == HandshakeType.CERTIFICATE:
                server_cert = CertificateMessage.decode(body)
                self.result.server_certificates = list(server_cert.chain)
                schedule.update_transcript(raw)
            elif msg_type == HandshakeType.CERTIFICATE_VERIFY:
                verify = CertificateVerify.decode(body)
                if server_cert is None or not server_cert.chain:
                    raise AlertError(AlertDescription.UNEXPECTED_MESSAGE, "CV before Certificate")
                content = CertificateVerify.signed_content(
                    schedule.transcript_hash(), server=True
                )
                leaf_key = server_cert.chain[0].public_key
                if (
                    verify.algorithm == _SIG_SCHEME_SIM
                    and self.suite is not None
                    and self.suite.name == "TLS_SIM_SHA256"
                ):
                    if verify.signature != _sim_certificate_signature(leaf_key, content):
                        raise AlertError(
                            AlertDescription.DECRYPT_ERROR,
                            "CertificateVerify: sim signature mismatch",
                        )
                else:
                    try:
                        leaf_key.verify(content, verify.signature)
                    except SignatureError as exc:
                        raise AlertError(
                            AlertDescription.DECRYPT_ERROR, f"CertificateVerify: {exc}"
                        ) from exc
                schedule.update_transcript(raw)
            elif msg_type == HandshakeType.FINISHED:
                finished = Finished.decode(body)
                assert self.handshake_secrets is not None
                expected = schedule.finished_verify_data(self.handshake_secrets.server)
                if finished.verify_data != expected:
                    raise AlertError(AlertDescription.DECRYPT_ERROR, "bad server Finished")
                schedule.update_transcript(raw)
                self._server_finished_seen = True
            else:
                raise AlertError(
                    AlertDescription.UNEXPECTED_MESSAGE, f"unexpected message {msg_type}"
                )
        if not self._server_finished_seen:
            raise AlertError(AlertDescription.UNEXPECTED_MESSAGE, "server Finished missing")
        # Application secrets are derived over the transcript through
        # the server Finished (RFC 8446 §7.1).
        self.application_secrets = schedule.application_traffic_secrets()
        if self.config.trusted_roots and not self._psk_accepted:
            self.result.certificate_errors = verify_chain(
                self.result.server_certificates,
                self.config.trusted_roots,
                server_name=self.config.server_name,
                week=self.config.validation_week,
            )
        assert self.handshake_secrets is not None
        verify_data = schedule.finished_verify_data(self.handshake_secrets.client)
        client_finished = Finished(verify_data).encode()
        schedule.update_transcript(client_finished)
        self.handshake_complete = True
        return client_finished

    def process_post_handshake(self, data: bytes) -> Optional[SessionTicket]:
        """Process post-handshake messages (NewSessionTicket).

        Returns the first usable :class:`SessionTicket`, also stored on
        :attr:`result`.
        """
        if not self.handshake_complete or self.schedule is None or self.suite is None:
            return None
        for msg_type, body, _raw in iter_messages(data):
            if msg_type != 4:  # NewSessionTicket
                continue
            ticket_blob, nonce, max_early_data = decode_new_session_ticket(body)
            psk = KeySchedule.psk_from_resumption(
                self.schedule.resumption_master_secret(), nonce, self.suite.hash_name
            )
            ticket = SessionTicket(
                identity=ticket_blob,
                psk=psk,
                cipher_suite_id=self.suite.id,
                hash_name=self.suite.hash_name,
                server_name=self.config.server_name,
                alpn=self.result.alpn,
                max_early_data=max_early_data,
                ticket_nonce=nonce,
            )
            self.result.session_ticket = ticket
            return ticket
        return None


@dataclass
class ServerFlight:
    """The server's first flight, split by encryption level for QUIC."""

    server_hello: bytes
    encrypted_flight: bytes  # EE + Certificate + CertificateVerify + Finished


class TlsServerSession(_SessionBase):
    """Server side of a TLS 1.3 handshake."""

    def __init__(self, config: TlsServerConfig, rng: Optional[DeterministicRandom] = None):
        super().__init__(rng or DeterministicRandom("tls-server"))
        self.config = config
        self.client_hello: Optional[ClientHello] = None
        self.client_sni: Optional[str] = None
        self.client_alpn: List[str] = []
        self.client_transport_params: Optional[TransportParameters] = None
        self.handshake_complete = False
        self._resumed = False
        # client_early_traffic_secret when 0-RTT was accepted.
        self.early_traffic_secret: Optional[bytes] = None
        self.early_data_accepted = False

    def process_client_hello(self, framed: bytes) -> ServerFlight:
        """Build the full server flight; raises AlertError on policy
        failures (e.g. SNI-required deployments)."""
        messages = list(iter_messages(framed))
        if len(messages) != 1 or messages[0][0] != HandshakeType.CLIENT_HELLO:
            raise AlertError(AlertDescription.UNEXPECTED_MESSAGE, "expected ClientHello")
        _, body, raw_ch = messages[0]
        hello = ClientHello.decode(body)
        self.client_hello = hello

        sni_data = hello.extension(ExtensionType.SERVER_NAME)
        self.client_sni = decode_sni(sni_data) if sni_data else None
        alpn_data = hello.extension(ExtensionType.ALPN)
        self.client_alpn = decode_alpn(alpn_data) if alpn_data else []
        tp_data = hello.extension(ExtensionType.QUIC_TRANSPORT_PARAMETERS)
        if tp_data is None:
            tp_data = hello.extension(ExtensionType.QUIC_TRANSPORT_PARAMETERS_DRAFT)
        if tp_data is not None:
            self.client_transport_params = TransportParameters.decode(tp_data)

        # PSK resumption offer (RFC 8446 §4.2.11): must be checked before
        # suite selection, since the PSK pins the hash algorithm.
        psk: Optional[bytes] = None
        psk_suite_id: Optional[int] = None
        psk_data = hello.extension(ExtensionType.PRE_SHARED_KEY)
        if psk_data is not None and self.config.ticket_key is not None:
            identity, _age, binder = decode_psk_client(psk_data)
            opened = open_ticket(self.config.ticket_key, identity)
            if opened is not None:
                candidate_psk, candidate_suite, _t_alpn, ticket_med = opened
                candidate = suite_by_id(candidate_suite)
                if candidate is not None and candidate.id in set(hello.cipher_suites):
                    truncated = raw_ch[: -psk_binders_serialized_length(binder)]
                    expected = KeySchedule(
                        candidate.hash_name, psk=candidate_psk
                    ).psk_binder(truncated)
                    if expected != binder:
                        raise AlertError(
                            AlertDescription.DECRYPT_ERROR, "PSK binder mismatch"
                        )
                    psk = candidate_psk
                    psk_suite_id = candidate.id
                    self._resumed = True
                    self.result.resumed = True
                    if (
                        hello.extension(ExtensionType.EARLY_DATA) is not None
                        and self.config.max_early_data > 0
                        and ticket_med > 0
                    ):
                        self.early_data_accepted = True

        # Suite selection: server preference order (pinned by the PSK).
        offered = set(hello.cipher_suites)
        if psk_suite_id is not None:
            suite = suite_by_id(psk_suite_id)
        else:
            suite = next((s for s in self.config.cipher_suites if s.id in offered), None)
        if suite is None:
            raise AlertError(AlertDescription.HANDSHAKE_FAILURE, "no common cipher suite")
        self.suite = suite
        self.result.cipher_suite = suite.name

        # Group / key share selection.
        key_share_data = hello.extension(ExtensionType.KEY_SHARE)
        if key_share_data is None:
            raise AlertError(AlertDescription.MISSING_EXTENSION, "no key_share")
        client_shares = dict(decode_key_share(key_share_data, True))
        group = None
        if self.config.preferred_group in client_shares and self.config.preferred_group in self.config.groups:
            group = self.config.preferred_group
        else:
            group = next((g for g in self.config.groups if g in client_shares), None)
        if group is None:
            raise AlertError(AlertDescription.HANDSHAKE_FAILURE, "no common group")
        self.result.key_exchange_group = GROUP_NAMES.get(group, f"group_{group}")
        client_public = client_shares[group]
        private = self._rng.token(32)
        if group == GROUP_X25519:
            public = x25519_base(private)
        else:
            public = hashlib.sha256(b"sim-pub" + private).digest() + private[:1]
        shared = _group_shared_secret(group, private, public, client_public, is_client=False)

        # ALPN selection.
        chosen_alpn: Optional[str] = None
        if self.config.no_sni_drops_alpn and self.client_sni is None:
            pass  # error vhost: no application protocol negotiated
        elif self.config.alpn_protocols:
            chosen_alpn = next(
                (p for p in self.config.alpn_protocols if p in self.client_alpn), None
            )
            if chosen_alpn is None and self.config.require_alpn:
                raise AlertError(
                    AlertDescription.NO_APPLICATION_PROTOCOL, "no common ALPN"
                )
        self.result.alpn = chosen_alpn

        # Certificate selection — may raise AlertError per server policy.
        # Resumed handshakes send no certificate flight (RFC 8446 §2.2).
        chain: List[Certificate] = []
        key = None
        if not self._resumed:
            if self.config.select_certificate is None:
                raise AlertError(AlertDescription.INTERNAL_ERROR, "no certificate configured")
            chain, key = self.config.select_certificate(self.client_sni)
            self.result.server_certificates = list(chain)

        # ServerHello.
        sh_extensions: List[Tuple[int, bytes]] = [
            (ExtensionType.SUPPORTED_VERSIONS, encode_supported_versions([TLS13], False)),
            (ExtensionType.KEY_SHARE, encode_key_share([(group, public)], False)),
        ]
        if self._resumed:
            sh_extensions.append((ExtensionType.PRE_SHARED_KEY, encode_psk_server(0)))
        server_hello = ServerHello(
            random=self._rng.token(32),
            cipher_suite=suite.id,
            extensions=sh_extensions,
            legacy_session_id=hello.legacy_session_id,
        ).encode()

        schedule = KeySchedule(suite.hash_name, psk=psk)
        schedule.update_transcript(raw_ch)
        if self.early_data_accepted:
            # 0-RTT keys are bound to the transcript through the CH only.
            self.early_traffic_secret = schedule.early_traffic_secret()
        schedule.update_transcript(server_hello)
        schedule.set_shared_secret(shared)
        self.schedule = schedule
        self.handshake_secrets = schedule.handshake_traffic_secrets()

        # EncryptedExtensions.
        ee_extensions: List[Tuple[int, bytes]] = []
        if chosen_alpn is not None:
            ee_extensions.append((ExtensionType.ALPN, encode_alpn([chosen_alpn])))
        if self.client_sni and self.config.echo_sni:
            ee_extensions.append((ExtensionType.SERVER_NAME, b""))
        if self.early_data_accepted:
            ee_extensions.append((ExtensionType.EARLY_DATA, b""))
        if self.config.transport_params is not None:
            ee_extensions.append(
                (
                    ExtensionType.QUIC_TRANSPORT_PARAMETERS,
                    self.config.transport_params.encode(),
                )
            )
        ee = EncryptedExtensions(extensions=ee_extensions).encode()
        schedule.update_transcript(ee)

        if self._resumed:
            cert_msg = b""
            cert_verify = b""
        else:
            assert key is not None
            cert_msg = CertificateMessage(chain=list(chain)).encode()
            schedule.update_transcript(cert_msg)
            content = CertificateVerify.signed_content(
                schedule.transcript_hash(), server=True
            )
            if suite.name == "TLS_SIM_SHA256":
                cert_verify = CertificateVerify(
                    signature=_sim_certificate_signature(key.public_key, content),
                    algorithm=_SIG_SCHEME_SIM,
                ).encode()
            else:
                cert_verify = CertificateVerify(signature=key.sign(content)).encode()
            schedule.update_transcript(cert_verify)

        verify_data = schedule.finished_verify_data(self.handshake_secrets.server)
        finished = Finished(verify_data).encode()
        schedule.update_transcript(finished)

        self.application_secrets = schedule.application_traffic_secrets()
        self.result.server_extensions = [
            ExtensionType.name(etype) for etype, _ in sh_extensions + ee_extensions
        ]
        self.result.sni_echoed = any(
            etype == ExtensionType.SERVER_NAME for etype, _ in ee_extensions
        )
        return ServerFlight(server_hello=server_hello, encrypted_flight=ee + cert_msg + cert_verify + finished)

    def issue_ticket(
        self,
        lifetime: int = 86_400,
        ticket_nonce: bytes = b"\x00",
    ) -> Optional[bytes]:
        """A framed NewSessionTicket, or None when resumption is off."""
        if (
            self.config.ticket_key is None
            or not self.handshake_complete
            or self.schedule is None
            or self.suite is None
        ):
            return None
        psk = KeySchedule.psk_from_resumption(
            self.schedule.resumption_master_secret(), ticket_nonce, self.suite.hash_name
        )
        identity = seal_ticket(
            self.config.ticket_key,
            psk,
            self.suite.id,
            self.result.alpn,
            self.config.max_early_data,
            self._rng.child("ticket"),
        )
        return encode_new_session_ticket(
            identity,
            ticket_nonce=ticket_nonce,
            lifetime=lifetime,
            max_early_data=self.config.max_early_data,
        )

    def process_client_finished(self, framed: bytes) -> None:
        if self.schedule is None or self.handshake_secrets is None:
            raise AlertError(AlertDescription.UNEXPECTED_MESSAGE, "handshake not started")
        messages = list(iter_messages(framed))
        if len(messages) != 1 or messages[0][0] != HandshakeType.FINISHED:
            raise AlertError(AlertDescription.UNEXPECTED_MESSAGE, "expected Finished")
        finished = Finished.decode(messages[0][1])
        expected = self.schedule.finished_verify_data(self.handshake_secrets.client)
        if finished.verify_data != expected:
            raise AlertError(AlertDescription.DECRYPT_ERROR, "bad client Finished")
        self.schedule.update_transcript(messages[0][2])
        self.handshake_complete = True
