"""TLS 1.3 handshake messages (RFC 8446 §4).

Implements the message bodies a full 1-RTT handshake needs:
ClientHello, ServerHello, EncryptedExtensions, Certificate,
CertificateVerify and Finished — plus the 4-byte handshake framing
used both inside QUIC CRYPTO frames and TLS records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator, List, Optional, Tuple

from repro.tls.certificates import Certificate
from repro.tls.extensions import decode_extensions, encode_extensions

__all__ = [
    "HandshakeType",
    "frame_message",
    "iter_messages",
    "ClientHello",
    "ServerHello",
    "EncryptedExtensions",
    "CertificateMessage",
    "CertificateVerify",
    "Finished",
    "MessageDecodeError",
]


class MessageDecodeError(ValueError):
    """Raised when a handshake message cannot be parsed."""


class HandshakeType:
    CLIENT_HELLO = 1
    SERVER_HELLO = 2
    ENCRYPTED_EXTENSIONS = 8
    CERTIFICATE = 11
    CERTIFICATE_VERIFY = 15
    FINISHED = 20


def frame_message(msg_type: int, body: bytes) -> bytes:
    return bytes([msg_type]) + len(body).to_bytes(3, "big") + body


def iter_messages(data: bytes) -> Iterator[Tuple[int, bytes, bytes]]:
    """Yield ``(type, body, raw)`` for each complete framed message."""
    offset = 0
    while offset < len(data):
        if offset + 4 > len(data):
            raise MessageDecodeError("truncated handshake header")
        msg_type = data[offset]
        length = int.from_bytes(data[offset + 1 : offset + 4], "big")
        end = offset + 4 + length
        if end > len(data):
            raise MessageDecodeError("truncated handshake body")
        yield msg_type, data[offset + 4 : end], data[offset:end]
        offset = end


_LEGACY_VERSION = 0x0303


@dataclass
class ClientHello:
    random: bytes
    cipher_suites: List[int]
    extensions: List[Tuple[int, bytes]] = field(default_factory=list)
    legacy_session_id: bytes = b""

    def encode(self) -> bytes:
        body = _LEGACY_VERSION.to_bytes(2, "big")
        body += self.random
        body += bytes([len(self.legacy_session_id)]) + self.legacy_session_id
        suites = b"".join(s.to_bytes(2, "big") for s in self.cipher_suites)
        body += len(suites).to_bytes(2, "big") + suites
        body += b"\x01\x00"  # legacy compression: null only
        body += encode_extensions(self.extensions)
        return frame_message(HandshakeType.CLIENT_HELLO, body)

    @classmethod
    def decode(cls, body: bytes) -> "ClientHello":
        if int.from_bytes(body[0:2], "big") != _LEGACY_VERSION:
            raise MessageDecodeError("bad legacy_version in ClientHello")
        random = body[2:34]
        if len(random) != 32:
            raise MessageDecodeError("truncated ClientHello random")
        try:
            offset = 34
            sid_len = body[offset]
            session_id = body[offset + 1 : offset + 1 + sid_len]
            offset += 1 + sid_len
            suites_len = int.from_bytes(body[offset : offset + 2], "big")
            offset += 2
            suites = [
                int.from_bytes(body[offset + i : offset + i + 2], "big")
                for i in range(0, suites_len, 2)
            ]
            offset += suites_len
            comp_len = body[offset]
            offset += 1 + comp_len
            extensions, _ = decode_extensions(body, offset)
        except MessageDecodeError:
            raise
        except (IndexError, ValueError) as exc:
            raise MessageDecodeError(f"malformed ClientHello: {exc}") from exc
        return cls(
            random=random,
            cipher_suites=suites,
            extensions=extensions,
            legacy_session_id=session_id,
        )

    def extension(self, ext_type: int) -> Optional[bytes]:
        for etype, data in self.extensions:
            if etype == ext_type:
                return data
        return None


@dataclass
class ServerHello:
    random: bytes
    cipher_suite: int
    extensions: List[Tuple[int, bytes]] = field(default_factory=list)
    legacy_session_id: bytes = b""

    def encode(self) -> bytes:
        body = _LEGACY_VERSION.to_bytes(2, "big")
        body += self.random
        body += bytes([len(self.legacy_session_id)]) + self.legacy_session_id
        body += self.cipher_suite.to_bytes(2, "big")
        body += b"\x00"  # legacy compression
        body += encode_extensions(self.extensions)
        return frame_message(HandshakeType.SERVER_HELLO, body)

    @classmethod
    def decode(cls, body: bytes) -> "ServerHello":
        random = body[2:34]
        if len(random) != 32:
            raise MessageDecodeError("truncated ServerHello random")
        try:
            offset = 34
            sid_len = body[offset]
            session_id = body[offset + 1 : offset + 1 + sid_len]
            offset += 1 + sid_len
            suite = int.from_bytes(body[offset : offset + 2], "big")
            offset += 3  # suite + compression byte
            extensions, _ = decode_extensions(body, offset)
        except MessageDecodeError:
            raise
        except (IndexError, ValueError) as exc:
            raise MessageDecodeError(f"malformed ServerHello: {exc}") from exc
        return cls(
            random=random,
            cipher_suite=suite,
            extensions=extensions,
            legacy_session_id=session_id,
        )

    def extension(self, ext_type: int) -> Optional[bytes]:
        for etype, data in self.extensions:
            if etype == ext_type:
                return data
        return None


@dataclass
class EncryptedExtensions:
    extensions: List[Tuple[int, bytes]] = field(default_factory=list)

    def encode(self) -> bytes:
        return frame_message(
            HandshakeType.ENCRYPTED_EXTENSIONS, encode_extensions(self.extensions)
        )

    @classmethod
    def decode(cls, body: bytes) -> "EncryptedExtensions":
        try:
            extensions, _ = decode_extensions(body, 0)
        except (IndexError, ValueError) as exc:
            raise MessageDecodeError(f"malformed EncryptedExtensions: {exc}") from exc
        return cls(extensions=extensions)

    def extension(self, ext_type: int) -> Optional[bytes]:
        for etype, data in self.extensions:
            if etype == ext_type:
                return data
        return None


@dataclass
class CertificateMessage:
    chain: List[Certificate] = field(default_factory=list)

    def encode(self) -> bytes:
        # Memoised by chain: every connection to a deployment sends the
        # same certificate flight.
        return _encode_certificate_message(tuple(self.chain))

    @classmethod
    def decode(cls, body: bytes) -> "CertificateMessage":
        return cls(chain=list(_decode_certificate_chain(body)))


@lru_cache(maxsize=2048)
def _encode_certificate_message(chain: Tuple[Certificate, ...]) -> bytes:
    body = b"\x00"  # empty certificate_request_context
    entries = b""
    for cert in chain:
        encoded = cert.encode()
        entries += len(encoded).to_bytes(3, "big") + encoded + b"\x00\x00"
    body += len(entries).to_bytes(3, "big") + entries
    return frame_message(HandshakeType.CERTIFICATE, body)


@lru_cache(maxsize=2048)
def _decode_certificate_chain(body: bytes) -> Tuple[Certificate, ...]:
    context_len = body[0]
    offset = 1 + context_len
    total = int.from_bytes(body[offset : offset + 3], "big")
    offset += 3
    end = offset + total
    chain = []
    while offset < end:
        cert_len = int.from_bytes(body[offset : offset + 3], "big")
        offset += 3
        chain.append(Certificate.decode(body[offset : offset + cert_len]))
        offset += cert_len
        ext_len = int.from_bytes(body[offset : offset + 2], "big")
        offset += 2 + ext_len
    return tuple(chain)


# RSA PKCS#1 v1.5 with SHA-256; fine for the simulated PKI.
_SIG_SCHEME_RSA_PKCS1_SHA256 = 0x0401


@dataclass
class CertificateVerify:
    signature: bytes
    algorithm: int = _SIG_SCHEME_RSA_PKCS1_SHA256

    def encode(self) -> bytes:
        body = self.algorithm.to_bytes(2, "big")
        body += len(self.signature).to_bytes(2, "big") + self.signature
        return frame_message(HandshakeType.CERTIFICATE_VERIFY, body)

    @classmethod
    def decode(cls, body: bytes) -> "CertificateVerify":
        algorithm = int.from_bytes(body[0:2], "big")
        length = int.from_bytes(body[2:4], "big")
        return cls(signature=body[4 : 4 + length], algorithm=algorithm)

    @staticmethod
    def signed_content(transcript_hash: bytes, server: bool = True) -> bytes:
        """The content CertificateVerify signs (RFC 8446 §4.4.3)."""
        role = b"server" if server else b"client"
        return (
            b" " * 64
            + b"TLS 1.3, " + role + b" CertificateVerify"
            + b"\x00"
            + transcript_hash
        )


@dataclass
class Finished:
    verify_data: bytes

    def encode(self) -> bytes:
        return frame_message(HandshakeType.FINISHED, self.verify_data)

    @classmethod
    def decode(cls, body: bytes) -> "Finished":
        return cls(verify_data=body)
