"""The TLS 1.3 key schedule (RFC 8446 §7.1).

Derives handshake and application traffic secrets from the (EC)DH
shared secret and the running transcript hash, plus the finished keys
used to compute and verify Finished messages.  QUIC reuses the traffic
secrets to derive packet protection keys (RFC 9001 §5.1).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.crypto.hkdf import hkdf_expand_label, hkdf_extract, hmac_digest

__all__ = ["KeySchedule", "TrafficSecrets"]


@lru_cache(maxsize=None)
def _empty_hash(hash_name: str) -> bytes:
    """Hash of the empty string — the 'derived' context (RFC 8446 §7.1)."""
    return hashlib.new(hash_name).digest()


@dataclass
class TrafficSecrets:
    client: bytes
    server: bytes


class KeySchedule:
    """Incremental key schedule bound to a hash algorithm.

    With ``psk`` set, the early secret is extracted from the
    pre-shared key (resumption), enabling binder keys and early
    (0-RTT) traffic secrets (RFC 8446 §4.2.11, §7.1).
    """

    def __init__(self, hash_name: str = "sha256", psk: Optional[bytes] = None):
        self.hash_name = hash_name
        self.hash_len = hashlib.new(hash_name).digest_size
        self._transcript = hashlib.new(hash_name)
        zeros = bytes(self.hash_len)
        self._early_secret = hkdf_extract(zeros, psk if psk else zeros, hash_name)
        self._handshake_secret: Optional[bytes] = None
        self._master_secret: Optional[bytes] = None

    # -- transcript ---------------------------------------------------------
    def update_transcript(self, message: bytes) -> None:
        self._transcript.update(message)

    def transcript_hash(self) -> bytes:
        return self._transcript.copy().digest()

    # -- secrets ------------------------------------------------------------
    def _derive_secret(self, secret: bytes, label: bytes) -> bytes:
        return hkdf_expand_label(
            secret, label, self.transcript_hash(), self.hash_len, self.hash_name
        )

    def set_shared_secret(self, shared_secret: bytes) -> None:
        """Install the (EC)DH result; call after ServerHello is in the
        transcript to derive handshake traffic secrets."""
        derived = hkdf_expand_label(
            self._early_secret,
            b"derived",
            _empty_hash(self.hash_name),
            self.hash_len,
            self.hash_name,
        )
        self._handshake_secret = hkdf_extract(derived, shared_secret, self.hash_name)

    def handshake_traffic_secrets(self) -> TrafficSecrets:
        if self._handshake_secret is None:
            raise RuntimeError("shared secret not installed")
        return TrafficSecrets(
            client=self._derive_secret(self._handshake_secret, b"c hs traffic"),
            server=self._derive_secret(self._handshake_secret, b"s hs traffic"),
        )

    def derive_master_secret(self) -> None:
        if self._handshake_secret is None:
            raise RuntimeError("shared secret not installed")
        derived = hkdf_expand_label(
            self._handshake_secret,
            b"derived",
            _empty_hash(self.hash_name),
            self.hash_len,
            self.hash_name,
        )
        self._master_secret = hkdf_extract(derived, bytes(self.hash_len), self.hash_name)

    def application_traffic_secrets(self) -> TrafficSecrets:
        """Application secrets over the transcript through server Finished."""
        if self._master_secret is None:
            self.derive_master_secret()
        assert self._master_secret is not None
        return TrafficSecrets(
            client=self._derive_secret(self._master_secret, b"c ap traffic"),
            server=self._derive_secret(self._master_secret, b"s ap traffic"),
        )

    # -- finished ------------------------------------------------------------
    def finished_verify_data(self, base_secret: bytes) -> bytes:
        """verify_data over the current transcript for one side."""
        finished_key = hkdf_expand_label(
            base_secret, b"finished", b"", self.hash_len, self.hash_name
        )
        return hmac_digest(finished_key, self.transcript_hash(), self.hash_name)

    # -- resumption / 0-RTT (RFC 8446 §4.2.11, §4.6.1) ------------------------
    def psk_binder(self, truncated_client_hello: bytes) -> bytes:
        """The PSK binder over a truncated ClientHello (fresh transcript)."""
        binder_key = hkdf_expand_label(
            self._early_secret,
            b"res binder",
            _empty_hash(self.hash_name),
            self.hash_len,
            self.hash_name,
        )
        finished_key = hkdf_expand_label(
            binder_key, b"finished", b"", self.hash_len, self.hash_name
        )
        transcript = hashlib.new(self.hash_name, truncated_client_hello).digest()
        return hmac_digest(finished_key, transcript, self.hash_name)

    def early_traffic_secret(self) -> bytes:
        """client_early_traffic_secret over the (full) ClientHello."""
        return self._derive_secret(self._early_secret, b"c e traffic")

    def resumption_master_secret(self) -> bytes:
        """Derived over the transcript through the client Finished."""
        if self._master_secret is None:
            self.derive_master_secret()
        assert self._master_secret is not None
        return self._derive_secret(self._master_secret, b"res master")

    @staticmethod
    def psk_from_resumption(
        resumption_master: bytes, ticket_nonce: bytes, hash_name: str = "sha256"
    ) -> bytes:
        """PSK = HKDF-Expand-Label(res_master, "resumption", nonce)."""
        hash_len = hashlib.new(hash_name).digest_size
        return hkdf_expand_label(
            resumption_master, b"resumption", ticket_nonce, hash_len, hash_name
        )
