"""Certificates and the simulated PKI.

Real X.509/DER parsing is out of scope (and irrelevant to the paper's
analyses, which compare *which* certificate a target returns, not ASN.1
internals), so certificates use a compact deterministic binary format
signed with RSA PKCS#1 v1.5 / SHA-256.  All the behaviour the paper
measures is preserved:

- certificate identity (Table 5 compares the certificate returned via
  QUIC and via TLS-over-TCP by fingerprint),
- SNI-based certificate selection, including wildcard SANs,
- Google's self-signed "missing SNI" error certificate on TCP,
- weekly certificate rolling (Google's ~weekly rotation produces
  mismatches between the QUIC and TCP scans; §5.1).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

from repro.crypto.rand import DeterministicRandom
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, SignatureError, generate_rsa_key

__all__ = [
    "Certificate",
    "CertificateAuthority",
    "CertificateError",
    "verify_chain",
    "hostname_matches",
]


class CertificateError(Exception):
    """Raised when a certificate chain fails validation."""


def _encode_str(text: str) -> bytes:
    raw = text.encode()
    return len(raw).to_bytes(2, "big") + raw


def _decode_str(data: bytes, offset: int) -> Tuple[str, int]:
    length = int.from_bytes(data[offset : offset + 2], "big")
    end = offset + 2 + length
    return data[offset + 2 : end].decode(), end


@dataclass(frozen=True)
class Certificate:
    """A leaf or CA certificate in the compact simulation format."""

    subject: str
    issuer: str
    san: Tuple[str, ...]
    serial: int
    not_before: int  # campaign week numbers serve as coarse validity
    not_after: int
    public_key: RsaPublicKey
    is_ca: bool = False
    signature: bytes = b""

    def tbs_bytes(self) -> bytes:
        """The to-be-signed encoding (everything except the signature)."""
        parts = [
            _encode_str(self.subject),
            _encode_str(self.issuer),
            len(self.san).to_bytes(2, "big"),
        ]
        parts.extend(_encode_str(name) for name in self.san)
        parts.append(self.serial.to_bytes(8, "big"))
        parts.append(self.not_before.to_bytes(4, "big"))
        parts.append(self.not_after.to_bytes(4, "big"))
        parts.append(b"\x01" if self.is_ca else b"\x00")
        n_bytes = self.public_key.n.to_bytes(self.public_key.size_bytes, "big")
        parts.append(len(n_bytes).to_bytes(2, "big") + n_bytes)
        parts.append(self.public_key.e.to_bytes(4, "big"))
        return b"".join(parts)

    def encode(self) -> bytes:
        sig = self.signature
        return self.tbs_bytes() + len(sig).to_bytes(2, "big") + sig

    @classmethod
    def decode(cls, data: bytes) -> "Certificate":
        subject, offset = _decode_str(data, 0)
        issuer, offset = _decode_str(data, offset)
        san_count = int.from_bytes(data[offset : offset + 2], "big")
        offset += 2
        san = []
        for _ in range(san_count):
            name, offset = _decode_str(data, offset)
            san.append(name)
        serial = int.from_bytes(data[offset : offset + 8], "big")
        offset += 8
        not_before = int.from_bytes(data[offset : offset + 4], "big")
        offset += 4
        not_after = int.from_bytes(data[offset : offset + 4], "big")
        offset += 4
        is_ca = data[offset] == 1
        offset += 1
        n_len = int.from_bytes(data[offset : offset + 2], "big")
        offset += 2
        n = int.from_bytes(data[offset : offset + n_len], "big")
        offset += n_len
        e = int.from_bytes(data[offset : offset + 4], "big")
        offset += 4
        sig_len = int.from_bytes(data[offset : offset + 2], "big")
        offset += 2
        signature = data[offset : offset + sig_len]
        return cls(
            subject=subject,
            issuer=issuer,
            san=tuple(san),
            serial=serial,
            not_before=not_before,
            not_after=not_after,
            public_key=RsaPublicKey(n=n, e=e),
            is_ca=is_ca,
            signature=signature,
        )

    def fingerprint(self) -> str:
        """SHA-256 fingerprint of the full encoding (Table 5 comparisons)."""
        return hashlib.sha256(self.encode()).hexdigest()

    @property
    def self_signed(self) -> bool:
        return self.subject == self.issuer


def hostname_matches(pattern: str, hostname: str) -> bool:
    """RFC 6125-style match with single left-most wildcard labels."""
    pattern = pattern.lower().rstrip(".")
    hostname = hostname.lower().rstrip(".")
    if pattern == hostname:
        return True
    if pattern.startswith("*."):
        suffix = pattern[2:]
        if not suffix:
            return False
        remainder = hostname[: -len(suffix) - 1] if hostname.endswith("." + suffix) else None
        return bool(remainder) and "." not in remainder
    return False


class CertificateAuthority:
    """A root CA that issues leaf certificates for the simulated PKI."""

    def __init__(self, name: str = "Repro Root CA", seed: str = "root-ca", key_bits: int = 1024):
        rng = DeterministicRandom(seed)
        self.key = generate_rsa_key(key_bits, rng)
        self._serials = rng.child("serials")
        root = Certificate(
            subject=name,
            issuer=name,
            san=(),
            serial=self._serials.getrandbits(63),
            not_before=0,
            not_after=10_000,
            public_key=self.key.public_key,
            is_ca=True,
        )
        self.root = Certificate(
            **{**root.__dict__, "signature": self.key.sign(root.tbs_bytes())}
        )

    def issue(
        self,
        subject: str,
        san: Sequence[str],
        key: Optional[RsaPrivateKey] = None,
        not_before: int = 0,
        not_after: int = 10_000,
        key_bits: int = 512,
        key_seed: Optional[str] = None,
    ) -> Tuple[Certificate, RsaPrivateKey]:
        """Issue a leaf certificate; generates a key if none is given."""
        if key is None:
            key = generate_rsa_key(key_bits, DeterministicRandom(key_seed or f"leaf:{subject}"))
        cert = Certificate(
            subject=subject,
            issuer=self.root.subject,
            san=tuple(san),
            serial=self._serials.getrandbits(63),
            not_before=not_before,
            not_after=not_after,
            public_key=key.public_key,
            is_ca=False,
        )
        signed = Certificate(**{**cert.__dict__, "signature": self.key.sign(cert.tbs_bytes())})
        return signed, key


def make_self_signed(
    subject: str,
    san: Sequence[str] = (),
    key_bits: int = 512,
    seed: Optional[str] = None,
) -> Tuple[Certificate, RsaPrivateKey]:
    """A self-signed certificate (Google's no-SNI error cert on TCP)."""
    key = generate_rsa_key(key_bits, DeterministicRandom(seed or f"selfsigned:{subject}"))
    cert = Certificate(
        subject=subject,
        issuer=subject,
        san=tuple(san),
        serial=1,
        not_before=0,
        not_after=10_000,
        public_key=key.public_key,
        is_ca=False,
    )
    signed = Certificate(**{**cert.__dict__, "signature": key.sign(cert.tbs_bytes())})
    return signed, key


def verify_chain(
    chain: Sequence[Certificate],
    trusted_roots: Sequence[Certificate],
    server_name: Optional[str] = None,
    week: Optional[int] = None,
) -> List[str]:
    """Validate a certificate chain; returns a list of error strings.

    An empty list means the chain verifies.  The QScanner records but
    does not enforce validation results, like the paper's tooling.

    Results are memoised: a campaign validates the same per-deployment
    chain for every domain pointing at that deployment, and the RSA
    signature walk is by far the most expensive part of a successful
    scan once the handshake itself is cached-key fast.
    """
    return list(
        _verify_chain_cached(tuple(chain), tuple(trusted_roots), server_name, week)
    )


@lru_cache(maxsize=4096)
def _verify_chain_cached(
    chain: Tuple[Certificate, ...],
    trusted_roots: Tuple[Certificate, ...],
    server_name: Optional[str],
    week: Optional[int],
) -> Tuple[str, ...]:
    errors: List[str] = []
    if not chain:
        return ("empty certificate chain",)
    leaf = chain[0]
    if server_name is not None:
        names = leaf.san or (leaf.subject,)
        if not any(hostname_matches(name, server_name) for name in names):
            errors.append(f"hostname {server_name!r} not covered by certificate")
    if week is not None and not (leaf.not_before <= week <= leaf.not_after):
        errors.append("certificate expired or not yet valid")
    # Walk the chain: each certificate must be signed by the next one,
    # the last by a trusted root (or be a trusted root / self-signed).
    for index, cert in enumerate(chain):
        if index + 1 < len(chain):
            issuer_cert = chain[index + 1]
        else:
            by_subject = {root.subject: root for root in trusted_roots}
            issuer_cert = by_subject.get(cert.issuer, cert if cert.self_signed else None)
            if issuer_cert is None:
                errors.append(f"issuer {cert.issuer!r} not trusted")
                break
            if cert.self_signed and cert not in trusted_roots:
                errors.append("self-signed certificate")
        try:
            issuer_cert.public_key.verify(cert.tbs_bytes(), cert.signature)
        except SignatureError:
            errors.append(f"bad signature on certificate {cert.subject!r}")
            break
    return tuple(errors)
