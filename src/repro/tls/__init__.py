"""A from-scratch TLS 1.3 implementation (RFC 8446 subset).

TLS is an intrinsic part of QUIC (RFC 9001); the same engine here
drives both the QUIC handshake (via CRYPTO frames, with the
``quic_transport_parameters`` extension) and the TLS-over-TCP scans
(via the record layer), exactly mirroring the paper's setup where the
QScanner and the Goscanner send the same Client Hello (§5.1).

Modules:

- :mod:`repro.tls.ciphersuites` — suite registry (real AES-GCM suites
  plus the documented private fast-simulation suite),
- :mod:`repro.tls.extensions` — SNI, ALPN, supported_versions,
  key_share, supported_groups, signature_algorithms and
  quic_transport_parameters,
- :mod:`repro.tls.messages` — handshake message framing and bodies,
- :mod:`repro.tls.keyschedule` — the RFC 8446 §7.1 key schedule,
- :mod:`repro.tls.certificates` — a compact certificate format with an
  RSA-signing CA (substituting X.509/DER; see DESIGN.md),
- :mod:`repro.tls.alerts` — alert codes and the AlertError exception,
- :mod:`repro.tls.record` — the TLS-over-TCP record layer,
- :mod:`repro.tls.engine` — client and server handshake sessions.
"""

from repro.tls.alerts import AlertDescription, AlertError
from repro.tls.certificates import Certificate, CertificateAuthority, verify_chain
from repro.tls.ciphersuites import CipherSuite, SUITE_AES_128_GCM_SHA256, SUITE_SIM_SHA256
from repro.tls.engine import TlsClientSession, TlsServerConfig, TlsServerSession

__all__ = [
    "AlertDescription",
    "AlertError",
    "Certificate",
    "CertificateAuthority",
    "verify_chain",
    "CipherSuite",
    "SUITE_AES_128_GCM_SHA256",
    "SUITE_SIM_SHA256",
    "TlsClientSession",
    "TlsServerSession",
    "TlsServerConfig",
]
