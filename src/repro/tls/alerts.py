"""TLS alerts (RFC 8446 §6).

The paper's stateful scans classify failures by the TLS alert carried
in QUIC CONNECTION_CLOSE frames; alert 0x28 (``handshake_failure``)
surfaced as QUIC error 0x128 dominates (Table 3).
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["AlertDescription", "AlertError"]


class AlertDescription(IntEnum):
    CLOSE_NOTIFY = 0
    UNEXPECTED_MESSAGE = 10
    BAD_RECORD_MAC = 20
    HANDSHAKE_FAILURE = 40  # 0x28
    BAD_CERTIFICATE = 42
    UNSUPPORTED_CERTIFICATE = 43
    CERTIFICATE_EXPIRED = 45
    CERTIFICATE_UNKNOWN = 46
    ILLEGAL_PARAMETER = 47
    UNKNOWN_CA = 48
    DECODE_ERROR = 50
    DECRYPT_ERROR = 51
    PROTOCOL_VERSION = 70
    INTERNAL_ERROR = 80
    MISSING_EXTENSION = 109
    UNSUPPORTED_EXTENSION = 110
    UNRECOGNIZED_NAME = 112
    NO_APPLICATION_PROTOCOL = 120


class AlertError(Exception):
    """A fatal TLS alert, raised locally or received from the peer.

    ``description`` is normally an :class:`AlertDescription`; a peer
    may send an alert code outside the registry, which is carried as a
    plain ``int`` rather than rejected.
    """

    def __init__(self, description, message: str = "", *, remote: bool = False):
        name = (
            description.name
            if isinstance(description, AlertDescription)
            else f"alert_{int(description)}"
        )
        super().__init__(f"TLS alert {int(description)} ({name}): {message}")
        self.description = description
        self.message = message
        self.remote = remote
