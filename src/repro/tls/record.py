"""TLS-over-TCP record layer (RFC 8446 §5).

Wraps handshake messages, alerts and application data in TLS records.
ClientHello/ServerHello travel as plaintext handshake records; once
handshake traffic secrets exist, everything is wrapped in protected
``application_data`` records carrying the inner content type, exactly
as the RFC prescribes.  The Goscanner-style TLS-over-TCP scans and the
simulated :443 servers both use this layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.crypto.hkdf import hkdf_expand_label
from repro.tls.alerts import AlertDescription, AlertError
from repro.tls.ciphersuites import CipherSuite

__all__ = [
    "ContentType",
    "RecordLayer",
    "RecordProtection",
    "RecordDecodeError",
    "encode_alert",
    "decode_records",
]

_LEGACY_RECORD_VERSION = 0x0303


class RecordDecodeError(ValueError):
    """Raised when a byte stream cannot be framed into TLS records."""


class ContentType:
    ALERT = 21
    HANDSHAKE = 22
    APPLICATION_DATA = 23


def _record(content_type: int, payload: bytes) -> bytes:
    return (
        bytes([content_type])
        + _LEGACY_RECORD_VERSION.to_bytes(2, "big")
        + len(payload).to_bytes(2, "big")
        + payload
    )


def encode_alert(description: AlertDescription, fatal: bool = True) -> bytes:
    return _record(ContentType.ALERT, bytes([2 if fatal else 1, int(description)]))


def decode_records(data: bytes) -> Iterator[Tuple[int, bytes]]:
    """Yield ``(content_type, payload)`` for each complete record."""
    offset = 0
    while offset < len(data):
        if offset + 5 > len(data):
            raise RecordDecodeError("truncated record header")
        content_type = data[offset]
        length = int.from_bytes(data[offset + 3 : offset + 5], "big")
        end = offset + 5 + length
        if end > len(data):
            raise RecordDecodeError("truncated record payload")
        yield content_type, data[offset + 5 : end]
        offset = end


class RecordProtection:
    """AEAD protection for one direction of a TLS connection."""

    def __init__(self, suite: CipherSuite, traffic_secret: bytes):
        key = hkdf_expand_label(
            traffic_secret, b"key", b"", suite.key_len, suite.hash_name
        )
        self._iv = hkdf_expand_label(
            traffic_secret, b"iv", b"", suite.iv_len, suite.hash_name
        )
        self._aead = suite.aead(key)
        self._sequence = 0

    def _nonce(self) -> bytes:
        seq = self._sequence.to_bytes(len(self._iv), "big")
        self._sequence += 1
        return bytes(a ^ b for a, b in zip(self._iv, seq))

    def encrypt(self, content_type: int, payload: bytes) -> bytes:
        """Build a protected application_data record."""
        inner = payload + bytes([content_type])
        header = (
            bytes([ContentType.APPLICATION_DATA])
            + _LEGACY_RECORD_VERSION.to_bytes(2, "big")
            + (len(inner) + 16).to_bytes(2, "big")
        )
        sealed = self._aead.seal(self._nonce(), inner, header)
        return header + sealed

    def decrypt(self, record_payload: bytes) -> Tuple[int, bytes]:
        """Open a protected record; returns ``(inner_type, plaintext)``."""
        header = (
            bytes([ContentType.APPLICATION_DATA])
            + _LEGACY_RECORD_VERSION.to_bytes(2, "big")
            + len(record_payload).to_bytes(2, "big")
        )
        inner = self._aead.open(self._nonce(), record_payload, header)
        # Strip zero padding, last non-zero byte is the content type.
        end = len(inner)
        while end > 0 and inner[end - 1] == 0:
            end -= 1
        if end == 0:
            raise AlertError(AlertDescription.UNEXPECTED_MESSAGE, "empty inner plaintext")
        return inner[end - 1], inner[: end - 1]


class RecordLayer:
    """Bidirectional record framing helper bound to one endpoint role."""

    def __init__(self):
        self.send_protection: Optional[RecordProtection] = None
        self.recv_protection: Optional[RecordProtection] = None

    def wrap_handshake(self, messages: bytes) -> bytes:
        if self.send_protection is None:
            return _record(ContentType.HANDSHAKE, messages)
        return self.send_protection.encrypt(ContentType.HANDSHAKE, messages)

    def wrap_application_data(self, data: bytes) -> bytes:
        if self.send_protection is None:
            raise AlertError(
                AlertDescription.INTERNAL_ERROR, "application data before keys"
            )
        return self.send_protection.encrypt(ContentType.APPLICATION_DATA, data)

    def wrap_alert(self, description: AlertDescription) -> bytes:
        if self.send_protection is None:
            return encode_alert(description)
        return self.send_protection.encrypt(
            ContentType.ALERT, bytes([2, int(description)])
        )

    def unwrap(self, data: bytes) -> List[Tuple[int, bytes]]:
        """Parse records, decrypting where protection is installed.

        Returns a list of ``(content_type, plaintext)``; raises
        :class:`AlertError` when the peer sent a fatal alert.
        """
        results: List[Tuple[int, bytes]] = []
        for content_type, payload in decode_records(data):
            if (
                content_type == ContentType.APPLICATION_DATA
                and self.recv_protection is not None
            ):
                content_type, payload = self.recv_protection.decrypt(payload)
            if content_type == ContentType.ALERT:
                if len(payload) < 2:
                    raise RecordDecodeError("truncated alert payload")
                level, description = payload[0], payload[1]
                if level == 2:
                    try:
                        description = AlertDescription(description)
                    except ValueError:
                        pass  # unknown alert codes travel as plain ints
                    raise AlertError(description, "received fatal alert", remote=True)
                continue
            results.append((content_type, payload))
        return results
