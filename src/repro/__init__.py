"""Reproduction of "It's Over 9000: Analyzing Early QUIC Deployments with
the Standardization on the Horizon" (Zirngibl et al., IMC 2021).

The package provides:

- a from-scratch QUIC (RFC 9000/9001) and TLS 1.3 (RFC 8446) stack in
  pure Python (:mod:`repro.quic`, :mod:`repro.tls`, :mod:`repro.crypto`),
- a deterministic simulated Internet substrate (:mod:`repro.netsim`,
  :mod:`repro.internet`, :mod:`repro.server`, :mod:`repro.dns`,
  :mod:`repro.http`),
- the paper's measurement tool set (:mod:`repro.scanners`): the stateless
  ZMap QUIC module, DNS scans for HTTPS/SVCB resource records, stateful
  TLS-over-TCP scans harvesting Alt-Svc headers, and the stateful
  QScanner, and
- the analysis pipeline regenerating every table and figure of the
  paper's evaluation (:mod:`repro.analysis`, :mod:`repro.experiments`).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
