"""Autonomous systems and origin lookup.

The paper maps every discovered address to the AS announcing its
covering prefix (Tables 2 and 7, Figures 4 and 8).  This module models
the announcement table and provides longest-prefix-match lookups via a
binary trie.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.netsim.addresses import Address, Prefix

__all__ = ["AutonomousSystem", "AsRegistry"]


@dataclass
class AutonomousSystem:
    """An AS with a number, a name and its announced prefixes."""

    number: int
    name: str
    prefixes: List[Prefix] = field(default_factory=list)

    def __str__(self) -> str:
        return f"AS{self.number} ({self.name})"


class _TrieNode:
    __slots__ = ("children", "origin")

    def __init__(self):
        self.children: List[Optional["_TrieNode"]] = [None, None]
        self.origin: Optional[int] = None


class AsRegistry:
    """Announcement table with longest-prefix-match origin lookup."""

    def __init__(self):
        self._systems: Dict[int, AutonomousSystem] = {}
        self._roots = {4: _TrieNode(), 6: _TrieNode()}

    def register(self, asn: int, name: str) -> AutonomousSystem:
        if asn in self._systems:
            existing = self._systems[asn]
            if existing.name != name:
                raise ValueError(f"AS{asn} already registered as {existing.name!r}")
            return existing
        system = AutonomousSystem(number=asn, name=name)
        self._systems[asn] = system
        return system

    def announce(self, asn: int, prefix: Prefix) -> None:
        if asn not in self._systems:
            raise KeyError(f"AS{asn} not registered")
        self._systems[asn].prefixes.append(prefix)
        node = self._roots[prefix.network.version]
        bits = prefix.network.bits
        value = prefix.network.value
        for depth in range(prefix.length):
            bit = (value >> (bits - 1 - depth)) & 1
            if node.children[bit] is None:
                node.children[bit] = _TrieNode()
            node = node.children[bit]
        node.origin = asn

    def origin(self, address: Address) -> Optional[int]:
        """AS number announcing the longest matching prefix, if any."""
        node = self._roots[address.version]
        best = node.origin
        bits = address.bits
        value = address.value
        for depth in range(bits):
            bit = (value >> (bits - 1 - depth)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.origin is not None:
                best = node.origin
        return best

    def get(self, asn: int) -> AutonomousSystem:
        return self._systems[asn]

    def name_of(self, asn: Optional[int]) -> str:
        if asn is None:
            return "(unannounced)"
        system = self._systems.get(asn)
        return system.name if system else f"AS{asn}"

    def systems(self) -> Iterable[AutonomousSystem]:
        return self._systems.values()

    def __len__(self) -> int:
        return len(self._systems)

    def __contains__(self, asn: int) -> bool:
        return asn in self._systems
