"""Named, composable path-condition profiles for the netsim.

The paper measured one ambient Internet path regime; QUIC deployment
behaviour is known to shift sharply with path conditions (satellite
links with ~600 ms RTT and high BDP, lossy edges, bufferbloated access
links).  This module extends :class:`~repro.netsim.topology.NetworkConditions`
with bandwidth and queueing semantics so ``repro matrix`` can sweep a
campaign over a datarate x latency grid:

- a :class:`PathSpec` attaches per-host, per-direction **token-bucket
  rate limiting** with a bounded **drop-tail queue** (modelled as
  tokens allowed to go negative down to ``-queue`` bytes; the backlog
  ``max(0, -tokens)`` divided by the rate is the queueing delay each
  datagram experiences — bufferbloat's latency growth falls out of
  this for free),
- an optional deterministic stochastic **loss** fraction drawn from a
  per-host, epoch-scoped RNG (never the network's global RNG, so
  sharded runs replay serial decisions byte for byte),
- an optional **RTT override** applied when the profile is installed.

Determinism contract (mirrors :mod:`repro.netsim.faults`): shaping
state is instantiated lazily per host inside the current stage epoch,
seeded from ``(path seed, epoch, host address)``, and anchors its
token-bucket clock to the host's *own first event* in the epoch — so a
host's shaping decisions depend only on its own traffic, which is what
makes ``--workers N`` runs byte-identical to serial runs for every
profile (shard boundaries never split one host's traffic).

``parse_path_spec`` accepts a named profile (``geo-satellite``), a
``rate=2mbps,rtt=600ms`` override string, or a profile name followed
by overrides (``geo-satellite,rtt=800ms``); it raises
:class:`PathSpecError` on anything else and is registered as a
conformance-fuzzer entry point (see :mod:`repro.conformance.fuzzer`).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "PATH_PROFILES",
    "PathSpec",
    "PathSpecError",
    "apply_path_profile",
    "get_path_profile",
    "parse_path_spec",
]


class PathSpecError(ValueError):
    """A path-profile spec string failed to parse or validate."""


@dataclass(frozen=True)
class PathSpec:
    """Immutable path-shaping parameters for one host's access link.

    Rates are **bytes per second** internally; the spec grammar speaks
    bits per second (``2mbps``) like link datasheets do.  ``rate`` sets
    both directions unless ``up_rate``/``down_rate`` override it.  A
    spec with no rate and no loss shapes nothing (the ``baseline``
    profile); an ``rtt`` override alone still applies at install time.
    """

    # Display name; excluded from equality so parse(canonical()) round-
    # trips custom specs without carrying a label along.
    name: str = field(default="custom", compare=False)
    rtt: Optional[float] = None  # seconds; overrides NetworkConditions.rtt
    rate: Optional[float] = None  # bytes/s, both directions
    up_rate: Optional[float] = None  # bytes/s, scanner -> server
    down_rate: Optional[float] = None  # bytes/s, server -> scanner
    burst: int = 9000  # token-bucket depth, bytes
    queue: int = 36000  # drop-tail queue bound, bytes
    loss: float = 0.0  # per-datagram loss probability, either direction

    @property
    def shapes(self) -> bool:
        """Whether delivery needs per-host shaping state at all."""
        return bool(
            self.rate is not None
            or self.up_rate is not None
            or self.down_rate is not None
            or self.loss
        )

    def resolved_rate(self, direction: str) -> Optional[float]:
        override = self.up_rate if direction == "up" else self.down_rate
        return override if override is not None else self.rate

    def instantiate(self, rng) -> "PathState":
        return PathState(self, rng)

    def canonical(self) -> str:
        """Canonical spec string: ``parse_path_spec(spec.canonical()) == spec``."""
        parts: List[str] = []
        if self.rate is not None:
            parts.append(f"rate={self.rate * 8!r}bps")
        if self.up_rate is not None:
            parts.append(f"up={self.up_rate * 8!r}bps")
        if self.down_rate is not None:
            parts.append(f"down={self.down_rate * 8!r}bps")
        if self.rtt is not None:
            parts.append(f"rtt={self.rtt!r}s")
        if self.loss:
            parts.append(f"loss={self.loss!r}")
        if self.burst != 9000:
            parts.append(f"burst={self.burst}")
        if self.queue != 36000:
            parts.append(f"queue={self.queue}")
        if not parts:
            return "baseline"
        return ",".join(parts)


class _Bucket:
    """One direction's token bucket with a virtual drop-tail queue.

    Tokens refill at ``rate`` bytes/s and cap at ``burst``; admitting a
    datagram spends its size.  Tokens may go negative down to
    ``-queue`` (the backlog standing in the queue); beyond that the
    datagram is tail-dropped.  The queueing delay of an admitted
    datagram is ``backlog / rate`` — a saturated bucket therefore
    exhibits monotonically growing delay until the queue bound bites.
    """

    __slots__ = ("rate", "burst", "queue", "tokens", "last")

    def __init__(self, rate: Optional[float], burst: int, queue: int):
        self.rate = rate
        self.burst = float(burst)
        self.queue = float(queue)
        self.tokens = float(burst)
        self.last = 0.0

    @property
    def backlog(self) -> float:
        return max(0.0, -self.tokens)

    def admit(self, local: float, size: int) -> Optional[float]:
        """Queueing delay in seconds, or ``None`` when tail-dropped."""
        if self.rate is None:
            return 0.0
        if local > self.last:
            self.tokens = min(self.burst, self.tokens + (local - self.last) * self.rate)
            self.last = local
        if self.tokens - size < -self.queue:
            return None
        self.tokens -= size
        return self.backlog / self.rate


class PathState:
    """Per-host shaping state, scoped to one stage epoch.

    Like :class:`~repro.netsim.faults.HostFault`, the clock anchors to
    the host's first event in the epoch (``local_time``), so decisions
    depend only on the host's own traffic and replay identically under
    sharding.
    """

    def __init__(self, spec: PathSpec, rng):
        self.spec = spec
        self._rng = rng
        self._t0: Optional[float] = None
        self._up = _Bucket(spec.resolved_rate("up"), spec.burst, spec.queue)
        self._down = _Bucket(spec.resolved_rate("down"), spec.burst, spec.queue)

    def local_time(self, now: float) -> float:
        if self._t0 is None:
            self._t0 = now
        return now - self._t0

    def _lossy(self) -> bool:
        return bool(self.spec.loss) and self._rng.random() < self.spec.loss

    def admit(self, now: float, size: int, direction: str) -> Optional[float]:
        """Shape one datagram: loss draw, then the direction's bucket.

        Returns the queueing delay in seconds, or ``None`` when the
        datagram is lost (stochastic loss or tail drop).
        """
        if self._lossy():
            return None
        bucket = self._up if direction == "up" else self._down
        return bucket.admit(self.local_time(now), size)

    def admit_segment(self, now: float, size: int, direction: str) -> Optional[float]:
        """Shape a TCP segment: capacity only, no stochastic loss.

        TCP retransmits mask random loss at the session level the
        netsim models, so TCP traffic pays for bandwidth (tail drops
        included) but not for the ``loss`` fraction.
        """
        bucket = self._up if direction == "up" else self._down
        return bucket.admit(self.local_time(now), size)


# -- catalogue -----------------------------------------------------------------

def _mbps(value: float) -> float:
    """Megabits/s -> bytes/s."""
    return value * 1_000_000 / 8


PATH_PROFILES: Dict[str, PathSpec] = {
    # Ambient paths, exactly as the paper measured them: no shaping.
    "baseline": PathSpec(name="baseline"),
    # GEO satellite: ~600 ms RTT, 2 Mbit/s, modest queue (high BDP
    # regime of the QUIC-on-the-highway / QUICOPTSAT sweeps).
    "geo-satellite": PathSpec(name="geo-satellite", rtt=0.6, rate=_mbps(2)),
    # Lossy edge: decent rate, 15 % stochastic datagram loss.
    "lossy-edge": PathSpec(name="lossy-edge", rtt=0.08, rate=_mbps(10), loss=0.15),
    # Bufferbloat: slow link behind an oversized queue — latency grows
    # with standing backlog (up to queue/rate = 2.4 s here).
    "bufferbloat": PathSpec(
        name="bufferbloat", rtt=0.04, rate=_mbps(1), queue=300_000
    ),
    # Asymmetric access: 0.5 Mbit/s up, 10 Mbit/s down.
    "asymmetric": PathSpec(
        name="asymmetric", up_rate=_mbps(0.5), down_rate=_mbps(10)
    ),
}


def get_path_profile(name: str) -> PathSpec:
    try:
        return PATH_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PATH_PROFILES))
        raise ValueError(f"unknown path profile {name!r} (known: {known})") from None


# -- spec grammar --------------------------------------------------------------

_RATE_UNITS = {"bps": 1.0, "kbps": 1_000.0, "mbps": 1_000_000.0, "gbps": 1_000_000_000.0}
_SIZE_UNITS = {"b": 1.0, "kb": 1_000.0, "mb": 1_000_000.0}


def _parse_float(text: str, key: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise PathSpecError(f"{key}: not a number: {text!r}") from None
    if not math.isfinite(value):
        raise PathSpecError(f"{key}: must be finite, got {text!r}")
    return value


def _parse_rate(text: str, key: str) -> float:
    """A link rate with a bits-per-second unit -> bytes/s."""
    lowered = text.strip().lower()
    for unit in ("gbps", "mbps", "kbps", "bps"):
        if lowered.endswith(unit):
            bits = _parse_float(lowered[: -len(unit)], key) * _RATE_UNITS[unit]
            break
    else:
        bits = _parse_float(lowered, key)  # bare number: bits/s
    if bits <= 0:
        raise PathSpecError(f"{key}: rate must be positive, got {text!r}")
    return bits / 8


def _parse_seconds(text: str, key: str) -> float:
    lowered = text.strip().lower()
    if lowered.endswith("ms"):
        value = _parse_float(lowered[:-2], key) / 1000.0
    elif lowered.endswith("s"):
        value = _parse_float(lowered[:-1], key)
    else:
        value = _parse_float(lowered, key)  # bare number: seconds
    if value < 0:
        raise PathSpecError(f"{key}: must be non-negative, got {text!r}")
    return value


def _parse_loss(text: str, key: str) -> float:
    lowered = text.strip()
    if lowered.endswith("%"):
        value = _parse_float(lowered[:-1], key) / 100.0
    else:
        value = _parse_float(lowered, key)
    if not 0.0 <= value <= 1.0:
        raise PathSpecError(f"{key}: loss must be within [0, 1], got {text!r}")
    return value


def _parse_bytes(text: str, key: str) -> int:
    lowered = text.strip().lower()
    for unit in ("kb", "mb", "b"):
        if lowered.endswith(unit):
            value = _parse_float(lowered[: -len(unit)], key) * _SIZE_UNITS[unit]
            break
    else:
        value = _parse_float(lowered, key)
    if value <= 0:
        raise PathSpecError(f"{key}: must be positive, got {text!r}")
    return int(value)


def parse_path_spec(text: str) -> PathSpec:
    """Parse a profile name and/or ``key=value`` overrides into a spec.

    Grammar: comma-separated tokens.  The first token may be a named
    profile from :data:`PATH_PROFILES`; every other token must be
    ``key=value`` with key one of ``rate``/``up``/``down`` (bits/s,
    units ``bps``/``kbps``/``mbps``/``gbps``), ``rtt`` (``ms``/``s``),
    ``loss`` (fraction or ``%``), ``burst``/``queue`` (bytes, units
    ``b``/``kb``/``mb``).  Raises :class:`PathSpecError` otherwise.
    """
    if not isinstance(text, str) or not text.strip():
        raise PathSpecError("empty path spec")
    tokens = [token.strip() for token in text.strip().split(",")]
    spec = PathSpec()
    for position, token in enumerate(tokens):
        if not token:
            raise PathSpecError(f"empty token in path spec: {text!r}")
        if "=" not in token:
            if position != 0:
                raise PathSpecError(
                    f"profile name {token!r} must come first in {text!r}"
                )
            if token not in PATH_PROFILES:
                known = ", ".join(sorted(PATH_PROFILES))
                raise PathSpecError(
                    f"unknown path profile {token!r} (known: {known})"
                )
            spec = PATH_PROFILES[token]
            continue
        key, _, value = token.partition("=")
        key = key.strip().lower()
        value = value.strip()
        if not value:
            raise PathSpecError(f"{key}: missing value in {text!r}")
        if key == "rate":
            spec = dataclasses.replace(spec, rate=_parse_rate(value, key))
        elif key == "up":
            spec = dataclasses.replace(spec, up_rate=_parse_rate(value, key))
        elif key == "down":
            spec = dataclasses.replace(spec, down_rate=_parse_rate(value, key))
        elif key == "rtt":
            spec = dataclasses.replace(spec, rtt=_parse_seconds(value, key))
        elif key == "loss":
            spec = dataclasses.replace(spec, loss=_parse_loss(value, key))
        elif key == "burst":
            spec = dataclasses.replace(spec, burst=_parse_bytes(value, key))
        elif key == "queue":
            spec = dataclasses.replace(spec, queue=_parse_bytes(value, key))
        else:
            raise PathSpecError(f"unknown path spec key {key!r} in {text!r}")
    return spec


# -- installation --------------------------------------------------------------

def apply_path_profile(network, addresses: Iterable, spec: PathSpec, seed: int) -> int:
    """Install ``spec`` on every address; returns the host count.

    Path conditions model the access link, so — unlike chaos fault
    profiles, which select a host fraction — a profile applies to the
    whole population.  Shaping state itself stays lazy and per-epoch
    (:meth:`Network.begin_fault_epoch` clears it); this only rewrites
    the static :class:`NetworkConditions` and seeds the path RNG.
    Composes with fault profiles: ``faults`` tuples are preserved.
    """
    network.configure_paths(seed)
    count = 0
    for address in addresses:
        base = network.conditions_for(address)
        updated = dataclasses.replace(base, path=spec if spec.shapes else None)
        if spec.rtt is not None:
            updated = dataclasses.replace(updated, rtt=spec.rtt)
        network.set_conditions(address, updated)
        count += 1
    return count
