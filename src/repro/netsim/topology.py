"""The simulated network: endpoints, delivery, virtual time.

The model is synchronous and deterministic.  A client socket sends a
datagram; the network looks up the destination endpoint, applies the
destination's :class:`NetworkConditions` (loss and round-trip time,
driven by a seeded RNG), synchronously invokes the endpoint handler
and schedules any replies into the client's inbox at ``now + rtt``.
``receive(timeout)`` advances the virtual clock — timeouts cost no
wall-clock time, which is what makes campaign-scale scans with the
paper's 34.5 % timeout rate tractable.

TCP is modelled at the session level (connect / ordered byte stream /
close); there is no segment-level simulation because nothing in the
paper's analysis depends on TCP internals beyond the SYN scan and an
ordered stream for TLS.

Fault injection: a host's (or prefix's) :class:`NetworkConditions` may
carry :class:`~repro.netsim.faults.FaultSpec` templates.  The network
instantiates per-host fault state lazily inside the current *stage
epoch* (:meth:`Network.begin_fault_epoch`) and consults it on every
datagram and TCP operation.  Fault decisions depend only on the fault
seed, the epoch and the host's own traffic — see
:mod:`repro.netsim.faults` for the determinism contract.

Path shaping: conditions may additionally carry a
:class:`~repro.netsim.paths.PathSpec` — token-bucket rate limiting
with a bounded drop-tail queue per host and direction.  Shaping state
follows the same per-host, per-epoch lifecycle as fault state, so the
serial == sharded determinism contract extends to every path profile.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.crypto.rand import DeterministicRandom
from repro.netsim.addresses import Address, Prefix
from repro.observability.metrics import get_metrics

if TYPE_CHECKING:  # import cycle: faults/paths import nothing from here
    from repro.netsim.faults import FaultSpec
    from repro.netsim.paths import PathSpec, PathState

__all__ = [
    "NetworkConditions",
    "Network",
    "UdpEndpoint",
    "TcpListener",
    "ClientUdpSocket",
    "TcpSession",
    "TrafficStats",
]


@dataclass
class NetworkConditions:
    """Per-host path behaviour."""

    rtt: float = 0.05  # seconds
    loss: float = 0.0  # probability a datagram (either direction) is lost
    silent: bool = False  # host drops everything (scan timeout)
    # Fault templates (see repro.netsim.faults); instantiated per host
    # per stage epoch by the network.  Empty for the baseline paths.
    # Entries are validated at epoch-begin so a stray non-FaultSpec
    # fails loudly before any delivery depends on it.
    faults: Tuple["FaultSpec", ...] = ()
    # Path-shaping template (see repro.netsim.paths); instantiated per
    # host per stage epoch, exactly like faults.  None = unshaped.
    path: Optional["PathSpec"] = None


@dataclass
class TrafficStats:
    """Aggregate counters, used by the traffic-overhead ablation."""

    datagrams_sent: int = 0
    bytes_sent: int = 0
    datagrams_delivered: int = 0
    syn_sent: int = 0
    faults_injected: int = 0
    path_drops: int = 0  # datagrams/segments lost to path shaping

    def record_send(self, size: int) -> None:
        self.datagrams_sent += 1
        self.bytes_sent += size


class UdpEndpoint:
    """Base class for simulated UDP services.

    Subclasses override :meth:`datagram_received` and call ``reply`` —
    possibly multiple times — for each response datagram.
    """

    def datagram_received(
        self,
        network: "Network",
        source: Tuple[Address, int],
        data: bytes,
        reply: Callable[[bytes], None],
    ) -> None:
        raise NotImplementedError


class TcpListener:
    """Base class for simulated TCP services (session-level)."""

    def session_opened(self, session: "TcpSession") -> None:
        """Called when a client connects; may already send data."""

    def data_received(self, session: "TcpSession", data: bytes) -> None:
        raise NotImplementedError

    def session_closed(self, session: "TcpSession") -> None:
        """Called when the peer closes."""


class ClientUdpSocket:
    """Client-side UDP socket bound to an ephemeral port."""

    def __init__(self, network: "Network", address: Address, port: int):
        self._network = network
        self.address = address
        self.port = port
        self._inbox: List[Tuple[float, int, Tuple[Address, int], bytes]] = []

    def send(self, destination: Address, port: int, data: bytes) -> None:
        self._network.deliver_datagram(
            (self.address, self.port), (destination, port), data
        )

    def receive(
        self, timeout: float
    ) -> Optional[Tuple[Tuple[Address, int], bytes]]:
        """Next datagram within ``timeout`` virtual seconds, else None."""
        deadline = self._network.now + timeout
        if self._inbox and self._inbox[0][0] <= deadline:
            arrival, _seq, source, data = heapq.heappop(self._inbox)
            self._network.advance_to(arrival)
            return source, data
        self._network.advance_to(deadline)
        return None

    def pending(self) -> int:
        return len(self._inbox)

    def _enqueue(self, arrival: float, source: Tuple[Address, int], data: bytes) -> None:
        heapq.heappush(self._inbox, (arrival, self._network.next_seq(), source, data))


class TcpSession:
    """An established TCP connection, client side synchronous."""

    def __init__(
        self,
        network: "Network",
        listener: TcpListener,
        client: Tuple[Address, int],
        server: Tuple[Address, int],
        conditions: NetworkConditions,
    ):
        self._network = network
        self._listener = listener
        self.client_address = client
        self.server_address = server
        self._conditions = conditions
        self._to_client: List[Tuple[float, int, bytes]] = []
        self.closed = False
        self.context: Dict[str, object] = {}  # server-side connection state

    # -- client side ---------------------------------------------------------
    def send(self, data: bytes) -> None:
        if self.closed:
            raise ConnectionError("session closed")
        self._network.stats.record_send(len(data))
        if not self._network.tcp_data_allowed(self.server_address[0]):
            return  # bytes vanish mid-session; the peer never replies
        if self._network.path_segment(self.server_address[0], len(data), "up") is None:
            return  # tail-dropped at the access link
        self._listener.data_received(self, data)

    def receive(self, timeout: float) -> Optional[bytes]:
        deadline = self._network.now + timeout
        if self._to_client and self._to_client[0][0] <= deadline:
            arrival, _seq, data = self._to_client.pop(0)
            self._network.advance_to(arrival)
            return data
        self._network.advance_to(deadline)
        if self.closed and not self._to_client:
            return None
        return None

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._listener.session_closed(self)

    # -- server side ----------------------------------------------------------
    def reply(self, data: bytes) -> None:
        if not self._network.tcp_data_allowed(self.server_address[0]):
            return
        delay = self._network.path_segment(self.server_address[0], len(data), "down")
        if delay is None:
            return
        arrival = self._network.now + self._conditions.rtt / 2 + delay
        self._to_client.append((arrival, self._network.next_seq(), data))

    def server_close(self) -> None:
        self.closed = True


class Network:
    """The simulated Internet fabric."""

    def __init__(self, seed: int = 0):
        self.now = 0.0
        self.stats = TrafficStats()
        self._rng = DeterministicRandom(seed).child("network")
        self._udp: Dict[Tuple[Address, int], UdpEndpoint] = {}
        self._tcp: Dict[Tuple[Address, int], TcpListener] = {}
        self._conditions: Dict[Address, NetworkConditions] = {}
        self._prefix_conditions: List[Tuple[Prefix, NetworkConditions]] = []
        self._default_conditions = NetworkConditions()
        self._ephemeral = itertools.count(49152)
        self._seq = itertools.count()
        self._client_sockets: Dict[Tuple[Address, int], ClientUdpSocket] = {}
        # Fault-injection state: per-host fault instances, scoped to the
        # current stage epoch (see repro.netsim.faults).
        self._fault_seed: int = 0
        self._fault_epoch: str = "root"
        self._fault_states: Dict[Tuple[Address, int], object] = {}
        # Path-shaping state: per-host token buckets, same epoch scope
        # (see repro.netsim.paths).
        self._path_seed: int = 0
        self._path_states: Dict[Address, "PathState"] = {}

    # -- registration ----------------------------------------------------------
    def bind_udp(self, address: Address, port: int, endpoint: UdpEndpoint) -> None:
        self._udp[(address, port)] = endpoint

    def bind_tcp(self, address: Address, port: int, listener: TcpListener) -> None:
        self._tcp[(address, port)] = listener

    def set_conditions(self, address: Address, conditions: NetworkConditions) -> None:
        self._conditions[address] = conditions

    def set_prefix_conditions(self, prefix: Prefix, conditions: NetworkConditions) -> None:
        """Conditions for every host in a prefix (host entries win)."""
        self._prefix_conditions.append((prefix, conditions))

    def conditions_for(self, address: Address) -> NetworkConditions:
        conditions = self._conditions.get(address)
        if conditions is not None:
            return conditions
        for prefix, prefix_conditions in self._prefix_conditions:
            if prefix.contains(address):
                return prefix_conditions
        return self._default_conditions

    # -- fault injection -------------------------------------------------------
    def configure_faults(self, seed: int) -> None:
        """Set the fault seed; clears any live per-host fault state."""
        self._fault_seed = seed
        self._fault_states.clear()

    # -- path shaping ----------------------------------------------------------
    def configure_paths(self, seed: int) -> None:
        """Set the path-shaping seed; clears live per-host path state."""
        self._path_seed = seed
        self._path_states.clear()

    def _active_path(
        self, address: Address, conditions: Optional[NetworkConditions] = None
    ) -> Optional["PathState"]:
        if conditions is None:
            conditions = self.conditions_for(address)
        spec = conditions.path
        if spec is None:
            return None
        state = self._path_states.get(address)
        if state is None:
            rng = DeterministicRandom(
                (self._path_seed, self._fault_epoch, str(address), "path")
            )
            state = spec.instantiate(rng)
            self._path_states[address] = state
        return state

    def _path_drop(self, direction: str, transport: str) -> None:
        self.stats.path_drops += 1
        get_metrics().counter(
            "path.dropped", direction=direction, transport=transport
        ).inc()

    def path_segment(self, address: Address, size: int, direction: str) -> Optional[float]:
        """Charge a TCP segment against ``address``'s path shaping.

        Returns the queueing delay in seconds, or ``None`` when the
        segment is tail-dropped (the session sees silence, like
        :meth:`tcp_data_allowed` fault drops).
        """
        state = self._active_path(address)
        if state is None:
            return 0.0
        delay = state.admit_segment(self.now, size, direction)
        if delay is None:
            self._path_drop(direction, "tcp")
        return delay

    def begin_fault_epoch(self, label: str) -> None:
        """Reset per-host fault and path state at a stage boundary.

        Each campaign stage runs in its own epoch, so a host's fault
        behaviour within a stage depends only on its own traffic there —
        the property that makes sharded runs replay serial decisions.
        Condition entries are validated here so a malformed ``faults``
        tuple fails loudly at the stage boundary, not deep in delivery.
        """
        if label != self._fault_epoch:
            self._validate_fault_specs()
            self._fault_epoch = label
            self._fault_states.clear()
            self._path_states.clear()

    def _validate_fault_specs(self) -> None:
        from repro.netsim.faults import FaultSpec

        def check(where, conditions: NetworkConditions) -> None:
            for entry in conditions.faults:
                if not isinstance(entry, FaultSpec):
                    raise TypeError(
                        f"conditions for {where} carry a non-FaultSpec fault "
                        f"entry: {entry!r} ({type(entry).__name__})"
                    )

        for address, conditions in self._conditions.items():
            if conditions.faults:
                check(address, conditions)
        for prefix, conditions in self._prefix_conditions:
            if conditions.faults:
                check(prefix, conditions)
        if self._default_conditions.faults:
            check("default conditions", self._default_conditions)

    def _active_faults(
        self, address: Address, conditions: Optional[NetworkConditions] = None
    ) -> Tuple:
        if conditions is None:
            conditions = self.conditions_for(address)
        if not conditions.faults:
            return ()
        states = []
        for index, spec in enumerate(conditions.faults):
            key = (address, index)
            state = self._fault_states.get(key)
            if state is None:
                rng = DeterministicRandom(
                    (self._fault_seed, self._fault_epoch, str(address), index)
                )
                state = spec.instantiate(rng)
                self._fault_states[key] = state
            states.append(state)
        return tuple(states)

    def _fault_injected(self, kind: str, action: str) -> None:
        self.stats.faults_injected += 1
        get_metrics().counter("faults.injected", fault=kind, action=action).inc()

    def udp_bound(self, address: Address, port: int) -> bool:
        return (address, port) in self._udp

    def udp_bound_values(self, port: int, version: int) -> frozenset:
        """Integer address values with a UDP endpoint on ``port``.

        A sweep-side snapshot: a destination outside this set is dropped
        by :meth:`deliver_datagram` before conditions, loss or faults
        apply, so stateless scanners can skip full delivery for the
        (overwhelming) unbound majority of a space sweep.
        """
        return frozenset(
            address.value
            for address, bound_port in self._udp
            if bound_port == port and address.version == version
        )

    def tcp_bound(self, address: Address, port: int) -> bool:
        return (address, port) in self._tcp

    # -- clock -----------------------------------------------------------------
    def advance_to(self, time: float) -> None:
        if time > self.now:
            self.now = time

    def next_seq(self) -> int:
        return next(self._seq)

    # -- UDP ---------------------------------------------------------------------
    def client_socket(self, address: Address) -> ClientUdpSocket:
        socket = ClientUdpSocket(self, address, next(self._ephemeral))
        self._client_sockets[(address, socket.port)] = socket
        return socket

    def deliver_datagram(
        self,
        source: Tuple[Address, int],
        destination: Tuple[Address, int],
        data: bytes,
    ) -> None:
        self.stats.record_send(len(data))
        endpoint = self._udp.get(destination)
        if endpoint is None:
            return  # no listener: silently dropped, like the Internet
        conditions = self.conditions_for(destination[0])
        if conditions.silent:
            return
        if conditions.loss and self._rng.random() < conditions.loss:
            return
        faults = self._active_faults(destination[0], conditions)
        for fault in faults:
            verdict, data = fault.on_send(self.now, data)
            if verdict is not None:
                self._fault_injected(fault.kind, verdict)
            if data is None:
                return
        path = self._active_path(destination[0], conditions)
        up_delay = 0.0
        if path is not None:
            admitted = path.admit(self.now, len(data), "up")
            if admitted is None:
                self._path_drop("up", "udp")
                return
            up_delay = admitted
        self.stats.datagrams_delivered += 1
        send_time = self.now

        def reply(response: bytes) -> None:
            if conditions.loss and self._rng.random() < conditions.loss:
                return
            for fault in faults:
                verdict, response = fault.on_reply(send_time, response)
                if verdict is not None:
                    self._fault_injected(fault.kind, verdict)
                if response is None:
                    return
            down_delay = 0.0
            if path is not None:
                admitted = path.admit(send_time, len(response), "down")
                if admitted is None:
                    self._path_drop("down", "udp")
                    return
                down_delay = admitted
            client = self._client_sockets.get(source)
            if client is not None:
                client._enqueue(
                    send_time + conditions.rtt + up_delay + down_delay,
                    destination,
                    response,
                )

        endpoint.datagram_received(self, source, data, reply)

    # -- TCP ------------------------------------------------------------------
    def syn_probe(self, destination: Address, port: int) -> bool:
        """ZMap-style TCP SYN probe: is the port open?"""
        self.stats.syn_sent += 1
        self.stats.record_send(40)
        conditions = self.conditions_for(destination)
        if conditions.silent:
            return False
        if conditions.loss and self._rng.random() < conditions.loss:
            return False
        for fault in self._active_faults(destination, conditions):
            if not fault.tcp_syn(self.now):
                self._fault_injected(fault.kind, "syn-drop")
                return False
        path = self._active_path(destination, conditions)
        if path is not None and path.admit_segment(self.now, 40, "up") is None:
            self._path_drop("up", "tcp")
            return False
        return (destination, port) in self._tcp

    def tcp_data_allowed(self, address: Address) -> bool:
        """Whether session data to/from ``address`` gets through faults."""
        for fault in self._active_faults(address):
            if not fault.tcp_data(self.now):
                self._fault_injected(fault.kind, "tcp-drop")
                return False
        return True

    def connect_tcp(
        self, client_address: Address, destination: Address, port: int
    ) -> Optional[TcpSession]:
        listener = self._tcp.get((destination, port))
        conditions = self.conditions_for(destination)
        if listener is None or conditions.silent:
            return None
        for fault in self._active_faults(destination, conditions):
            if not fault.tcp_open(self.now):
                self._fault_injected(fault.kind, "connect-refused")
                return None
        path = self._active_path(destination, conditions)
        if path is not None and path.admit_segment(self.now, 40, "up") is None:
            self._path_drop("up", "tcp")
            return None
        session = TcpSession(
            self,
            listener,
            (client_address, next(self._ephemeral)),
            (destination, port),
            conditions,
        )
        self.advance_to(self.now + conditions.rtt)  # three-way handshake
        listener.session_opened(session)
        return session
