"""IP addresses and prefixes for the simulated Internet.

Thin, hashable value types over integers.  We implement these rather
than using :mod:`ipaddress` objects directly because scans manipulate
millions of addresses and the simulator needs cheap arithmetic
(prefix iteration, ZMap permutation indexing); conversion helpers to
and from the standard library types are provided.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Iterator, Union

__all__ = ["IPv4Address", "IPv6Address", "Prefix", "Address"]


@dataclass(frozen=True, order=True)
class IPv4Address:
    value: int

    MAX = (1 << 32) - 1

    def __post_init__(self):
        if not 0 <= self.value <= self.MAX:
            raise ValueError(f"IPv4 address out of range: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        return cls(int(ipaddress.IPv4Address(text)))

    def __str__(self) -> str:
        return str(ipaddress.IPv4Address(self.value))

    @property
    def version(self) -> int:
        return 4

    @property
    def bits(self) -> int:
        return 32


@dataclass(frozen=True, order=True)
class IPv6Address:
    value: int

    MAX = (1 << 128) - 1

    def __post_init__(self):
        if not 0 <= self.value <= self.MAX:
            raise ValueError(f"IPv6 address out of range: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "IPv6Address":
        return cls(int(ipaddress.IPv6Address(text)))

    def __str__(self) -> str:
        return str(ipaddress.IPv6Address(self.value))

    @property
    def version(self) -> int:
        return 6

    @property
    def bits(self) -> int:
        return 128


Address = Union[IPv4Address, IPv6Address]


@dataclass(frozen=True)
class Prefix:
    """A CIDR prefix over either address family."""

    network: Address
    length: int

    def __post_init__(self):
        if not 0 <= self.length <= self.network.bits:
            raise ValueError(f"invalid prefix length {self.length}")
        if self.network.value & self.host_mask():
            raise ValueError("prefix has host bits set")

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        net = ipaddress.ip_network(text, strict=True)
        if net.version == 4:
            return cls(IPv4Address(int(net.network_address)), net.prefixlen)
        return cls(IPv6Address(int(net.network_address)), net.prefixlen)

    def host_mask(self) -> int:
        return (1 << (self.network.bits - self.length)) - 1

    def net_mask(self) -> int:
        full = (1 << self.network.bits) - 1
        return full ^ self.host_mask()

    def contains(self, address: Address) -> bool:
        if address.version != self.network.version:
            return False
        return (address.value & self.net_mask()) == self.network.value

    @property
    def num_addresses(self) -> int:
        return 1 << (self.network.bits - self.length)

    def address_at(self, index: int) -> Address:
        if not 0 <= index < self.num_addresses:
            raise IndexError("host index out of prefix range")
        cls = type(self.network)
        return cls(self.network.value + index)

    def hosts(self) -> Iterator[Address]:
        for index in range(self.num_addresses):
            yield self.address_at(index)

    def __str__(self) -> str:
        return f"{self.network}/{self.length}"
