"""Composable, deterministic fault injection for the simulated Internet.

The paper's measurements are dominated by failure — 34.5 % of QScanner
targets time out, hosts rate-limit probes, middleboxes block UDP — yet
the base simulation only models uniform loss and fully-silent hosts.
This module adds the realistic failure modes as *fault specs* attached
to a host's :class:`~repro.netsim.topology.NetworkConditions`:

- :class:`BurstLoss` — two-state (Gilbert) burst/tail loss,
- :class:`RateLimit` — token bucket; exhausted buckets drop datagrams
  the way an ICMP administratively-prohibited filter would,
- :class:`UdpBlackhole` — a middlebox that blocks UDP but leaves TCP
  working (the paper's TCP-reachable/QUIC-unreachable population),
- :class:`Truncate` — datagram truncation (broken path MTU handling),
- :class:`Corrupt` — in-flight bit corruption,
- :class:`Flap` — the host disappears and reappears in windows on the
  virtual clock (UDP and TCP),
- :class:`Crash` — the server dies mid-handshake after a datagram
  budget and never answers again (within the stage).

Determinism contract (the invariant the parallel engine relies on):
fault behaviour for a host is a pure function of the campaign fault
seed, the *stage epoch* and the host's own traffic sequence — never of
global virtual time or other hosts' traffic.  The network instantiates
per-host fault state lazily inside each stage epoch
(:meth:`~repro.netsim.topology.Network.begin_fault_epoch`), seeds it
from ``(fault_seed, epoch, address, spec index)``, and time-based
faults measure *host-local* time from the first datagram the host sees
in the epoch.  Because the engine's shard boundaries never split one
host's traffic, serial and ``--workers N`` runs replay identical fault
decisions, record for record.

Profiles (:data:`PROFILES`) bundle fault specs with host fractions;
:func:`apply_profile` selects the affected hosts by seeded hash so the
assignment is stable under any iteration order.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.crypto.rand import DeterministicRandom, derive_seed
from repro.netsim.addresses import Address

__all__ = [
    "FaultSpec",
    "HostFault",
    "BurstLoss",
    "RateLimit",
    "UdpBlackhole",
    "Truncate",
    "Corrupt",
    "Flap",
    "Crash",
    "ProfileEntry",
    "FaultProfile",
    "PROFILES",
    "get_profile",
    "apply_profile",
    "profile_counts",
    "profile_selected",
    "ServiceFault",
    "ServiceFaultError",
    "SERVICE_FAULT_ENV",
    "SERVICE_FAULT_POINTS",
    "parse_service_fault",
    "maybe_inject_service_fault",
]


# -- per-host fault state ------------------------------------------------------


class HostFault:
    """Live fault state for one host within one stage epoch.

    Subclasses override the hooks they care about.  UDP hooks return
    ``(verdict, data)``: ``verdict`` is ``None`` for untouched delivery
    or a short action label (counted in the ``faults.injected`` metric);
    ``data=None`` means the datagram is consumed.  TCP hooks return
    whether the operation is allowed.

    ``local_time`` anchors time-based behaviour to the first event the
    host sees in the epoch, keeping fault decisions independent of the
    global clock (which differs between serial and sharded runs).
    """

    def __init__(self, kind: str, rng: DeterministicRandom):
        self.kind = kind
        self._rng = rng
        self._t0: Optional[float] = None

    def local_time(self, now: float) -> float:
        if self._t0 is None:
            self._t0 = now
        return now - self._t0

    # -- UDP -------------------------------------------------------------------
    def on_send(self, now: float, data: bytes):
        """A datagram arriving at the host (scanner -> server)."""
        return None, data

    def on_reply(self, now: float, data: bytes):
        """A datagram leaving the host (server -> scanner)."""
        return None, data

    # -- TCP -------------------------------------------------------------------
    def tcp_syn(self, now: float) -> bool:
        """Whether a SYN probe elicits a SYN/ACK."""
        return True

    def tcp_open(self, now: float) -> bool:
        """Whether a full TCP connect succeeds."""
        return True

    def tcp_data(self, now: float) -> bool:
        """Whether session data (either direction) gets through."""
        return True


@dataclass(frozen=True)
class FaultSpec:
    """Immutable template for a fault; instantiated per host per epoch."""

    kind = "fault"

    def instantiate(self, rng: DeterministicRandom) -> HostFault:
        raise NotImplementedError


class _BurstLossState(HostFault):
    def __init__(self, spec: "BurstLoss", rng: DeterministicRandom):
        super().__init__(spec.kind, rng)
        self._spec = spec
        self._bursting = False

    def _step(self) -> bool:
        if self._bursting:
            if self._rng.random() < self._spec.exit_probability:
                self._bursting = False
        elif self._rng.random() < self._spec.enter_probability:
            self._bursting = True
        return self._bursting

    def on_send(self, now: float, data: bytes):
        if self._step():
            return "burst-drop", None
        return None, data

    def on_reply(self, now: float, data: bytes):
        if self._step():
            return "burst-drop", None
        return None, data


@dataclass(frozen=True)
class BurstLoss(FaultSpec):
    """Gilbert-model burst loss: correlated drops, unlike uniform loss."""

    kind = "burst-loss"
    enter_probability: float = 0.15
    exit_probability: float = 0.4

    def instantiate(self, rng: DeterministicRandom) -> HostFault:
        return _BurstLossState(self, rng)


class _RateLimitState(HostFault):
    def __init__(self, spec: "RateLimit", rng: DeterministicRandom):
        super().__init__(spec.kind, rng)
        self._spec = spec
        self._tokens = float(spec.capacity)
        self._last = 0.0

    def _take(self, now: float) -> bool:
        local = self.local_time(now)
        self._tokens = min(
            float(self._spec.capacity),
            self._tokens + (local - self._last) * self._spec.refill_per_second,
        )
        self._last = local
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def on_send(self, now: float, data: bytes):
        if not self._take(now):
            # The filter consumes the datagram; on the real Internet an
            # ICMP administratively-prohibited reply would come back.
            return "admin-prohibited", None
        return None, data

    def tcp_syn(self, now: float) -> bool:
        return self._take(now)

    def tcp_open(self, now: float) -> bool:
        return self._take(now)


@dataclass(frozen=True)
class RateLimit(FaultSpec):
    """Token-bucket rate limiting with administratively-prohibited drops."""

    kind = "rate-limit"
    capacity: int = 8
    refill_per_second: float = 2.0

    def instantiate(self, rng: DeterministicRandom) -> HostFault:
        return _RateLimitState(self, rng)


class _UdpBlackholeState(HostFault):
    def on_send(self, now: float, data: bytes):
        return "udp-blocked", None

    def on_reply(self, now: float, data: bytes):
        return "udp-blocked", None


@dataclass(frozen=True)
class UdpBlackhole(FaultSpec):
    """A middlebox blocking all UDP while TCP stays reachable."""

    kind = "udp-blackhole"

    def instantiate(self, rng: DeterministicRandom) -> HostFault:
        return _UdpBlackholeState(self.kind, rng)


class _TruncateState(HostFault):
    def __init__(self, spec: "Truncate", rng: DeterministicRandom):
        super().__init__(spec.kind, rng)
        self._spec = spec

    def _maybe(self, data: bytes):
        if (
            len(data) > self._spec.keep_bytes
            and self._rng.random() < self._spec.probability
        ):
            return "truncated", data[: self._spec.keep_bytes]
        return None, data

    def on_send(self, now: float, data: bytes):
        return self._maybe(data)

    def on_reply(self, now: float, data: bytes):
        return self._maybe(data)


@dataclass(frozen=True)
class Truncate(FaultSpec):
    """Datagram truncation (broken path-MTU handling on the path)."""

    kind = "truncate"
    probability: float = 0.3
    keep_bytes: int = 200

    def instantiate(self, rng: DeterministicRandom) -> HostFault:
        return _TruncateState(self, rng)


class _CorruptState(HostFault):
    def __init__(self, spec: "Corrupt", rng: DeterministicRandom):
        super().__init__(spec.kind, rng)
        self._spec = spec

    def _maybe(self, data: bytes):
        if data and self._rng.random() < self._spec.probability:
            position = self._rng.randrange(len(data))
            corrupted = bytearray(data)
            corrupted[position] ^= 0xFF
            return "corrupted", bytes(corrupted)
        return None, data

    def on_send(self, now: float, data: bytes):
        return self._maybe(data)

    def on_reply(self, now: float, data: bytes):
        return self._maybe(data)


@dataclass(frozen=True)
class Corrupt(FaultSpec):
    """In-flight bit corruption: one byte of the datagram is flipped."""

    kind = "corrupt"
    probability: float = 0.3

    def instantiate(self, rng: DeterministicRandom) -> HostFault:
        return _CorruptState(self, rng)


class _FlapState(HostFault):
    def __init__(self, spec: "Flap", rng: DeterministicRandom):
        super().__init__(spec.kind, rng)
        self._spec = spec
        period = spec.up_seconds + spec.down_seconds
        self._phase = self._rng.random() * period

    def _up(self, now: float) -> bool:
        period = self._spec.up_seconds + self._spec.down_seconds
        position = (self._phase + self.local_time(now)) % period
        return position < self._spec.up_seconds

    def on_send(self, now: float, data: bytes):
        if not self._up(now):
            return "flap-down", None
        return None, data

    def on_reply(self, now: float, data: bytes):
        if not self._up(now):
            return "flap-down", None
        return None, data

    def tcp_syn(self, now: float) -> bool:
        return self._up(now)

    def tcp_open(self, now: float) -> bool:
        return self._up(now)

    def tcp_data(self, now: float) -> bool:
        return self._up(now)


@dataclass(frozen=True)
class Flap(FaultSpec):
    """The host alternates between reachable and dark windows."""

    kind = "flap"
    up_seconds: float = 4.0
    down_seconds: float = 2.0

    def instantiate(self, rng: DeterministicRandom) -> HostFault:
        return _FlapState(self, rng)


class _CrashState(HostFault):
    def __init__(self, spec: "Crash", rng: DeterministicRandom):
        super().__init__(spec.kind, rng)
        self._spec = spec
        self._seen = 0

    def _alive(self) -> bool:
        return self._seen <= self._spec.after_datagrams

    def on_send(self, now: float, data: bytes):
        self._seen += 1
        if not self._alive():
            return "crashed", None
        return None, data

    def tcp_open(self, now: float) -> bool:
        self._seen += 1
        return self._alive()

    def tcp_data(self, now: float) -> bool:
        self._seen += 1
        return self._alive()


@dataclass(frozen=True)
class Crash(FaultSpec):
    """Mid-handshake server crash: dies after a datagram budget."""

    kind = "crash"
    after_datagrams: int = 2

    def instantiate(self, rng: DeterministicRandom) -> HostFault:
        return _CrashState(self, rng)


# -- profiles ------------------------------------------------------------------


@dataclass(frozen=True)
class ProfileEntry:
    """One fault applied to a seeded fraction of the hosts."""

    fraction: float
    spec: FaultSpec


@dataclass(frozen=True)
class FaultProfile:
    """A named bundle of fault specs with host fractions."""

    name: str
    description: str
    entries: Tuple[ProfileEntry, ...]


PROFILES: Dict[str, FaultProfile] = {
    profile.name: profile
    for profile in (
        FaultProfile(
            name="flaky-edge",
            description=(
                "Bursty edge loss, flapping hosts and occasional datagram "
                "truncation — the default chaos profile."
            ),
            entries=(
                ProfileEntry(0.20, BurstLoss()),
                ProfileEntry(0.10, Flap()),
                ProfileEntry(0.05, Truncate()),
            ),
        ),
        FaultProfile(
            name="rate-limited",
            description="A third of hosts sit behind token-bucket rate limits.",
            entries=(ProfileEntry(0.33, RateLimit()),),
        ),
        FaultProfile(
            name="hostile-middlebox",
            description=(
                "UDP-blocking middleboxes plus corrupting/truncating paths "
                "(the TCP-works/QUIC-fails population)."
            ),
            entries=(
                ProfileEntry(0.15, UdpBlackhole()),
                ProfileEntry(0.10, Corrupt()),
                ProfileEntry(0.10, Truncate()),
            ),
        ),
        FaultProfile(
            name="brownout",
            description="Mid-handshake server crashes and long dark windows.",
            entries=(
                ProfileEntry(0.15, Crash()),
                ProfileEntry(0.20, Flap(up_seconds=2.0, down_seconds=4.0)),
            ),
        ),
    )
}


def get_profile(name: str) -> FaultProfile:
    """Look up a profile by name; raises with the catalogue on miss."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown fault profile {name!r}; available: {', '.join(sorted(PROFILES))}"
        ) from None


def _selected(seed: int, profile: FaultProfile, index: int, address: Address) -> bool:
    entry = profile.entries[index]
    score = derive_seed(seed, profile.name, index, str(address)) % 1_000_000
    return score < entry.fraction * 1_000_000


def profile_selected(seed: int, profile: FaultProfile, address: Address) -> bool:
    """Whether ``address`` gets *any* fault spec under the profile.

    Recomputes the exact :func:`apply_profile` selection hash — the
    longitudinal delta differ uses it to force fault-afflicted hosts
    onto the rescan path (their records depend on fault state, not just
    on the deployment's week-over-week world signature).
    """
    return any(
        _selected(seed, profile, index, address)
        for index in range(len(profile.entries))
    )


def apply_profile(
    network,
    addresses: Iterable[Address],
    profile: FaultProfile,
    seed: int,
) -> Dict[str, int]:
    """Attach a profile's fault specs to hosts on ``network``.

    Host selection hashes ``(seed, profile, entry index, address)`` so
    the assignment is a pure function of the campaign fault seed —
    independent of iteration order and identical in every worker
    replica.  Returns per-fault-kind host counts.
    """
    network.configure_faults(seed)
    counts: Dict[str, int] = {}
    for entry in profile.entries:
        counts.setdefault(entry.spec.kind, 0)
    for address in addresses:
        specs = []
        for index, entry in enumerate(profile.entries):
            if _selected(seed, profile, index, address):
                specs.append(entry.spec)
                counts[entry.spec.kind] += 1
        if specs:
            base = network.conditions_for(address)
            network.set_conditions(
                address,
                dataclasses.replace(base, faults=base.faults + tuple(specs)),
            )
    return counts


def profile_counts(
    addresses: Iterable[Address],
    profile: FaultProfile,
    seed: int,
) -> Dict[str, int]:
    """Per-fault-kind host counts of :func:`apply_profile`, without applying.

    Recomputes the exact selection hashes, so the result equals what
    :func:`apply_profile` would return for the same arguments.  The
    fleet scheduler uses it to set a cell's ``faults.hosts`` gauges
    without touching the shared pristine world (workers apply the
    profile to their own replicas instead).
    """
    counts: Dict[str, int] = {}
    for entry in profile.entries:
        counts.setdefault(entry.spec.kind, 0)
    for address in addresses:
        for index, entry in enumerate(profile.entries):
            if _selected(seed, profile, index, address):
                counts[entry.spec.kind] += 1
    return counts


# -- service-granularity faults ------------------------------------------------
#
# The faults above afflict simulated *hosts*; the longitudinal
# measurement service also has to survive faults in the measurement
# process itself — a SIGKILL mid-week, a hung scan, a transient crash.
# A service fault is armed through the environment
# (``REPRO_SERVICE_FAULT=kill@mid-week:7``) so it propagates to
# watchdog child processes and — crucially for crash/resume tests —
# vanishes when the operator restarts the service with ``--resume``.

SERVICE_FAULT_ENV = "REPRO_SERVICE_FAULT"

# Injection points the longitudinal scheduler/loader consult, in the
# order they occur within one week's processing.
SERVICE_FAULT_POINTS = ("week-start", "mid-week", "mid-load", "after-commit")

_SERVICE_FAULT_KINDS = ("kill", "hang", "fail")
_HANG_SECONDS = 3600.0


class ServiceFaultError(RuntimeError):
    """Raised by a ``fail``-kind service fault (a transient crash the
    week-level retry policy is expected to absorb)."""


@dataclass(frozen=True)
class ServiceFault:
    """A parsed service-fault spec: ``<kind>@<point>:<week>``.

    ``kill`` SIGKILLs the process (no cleanup, no commit — the crash
    the run ledger must survive); ``hang`` sleeps far past any
    reasonable watchdog deadline; ``fail`` raises
    :class:`ServiceFaultError` on every attempt, exhausting the week's
    retries.
    """

    kind: str
    point: str
    week: int

    def matches(self, point: str, week: int) -> bool:
        return self.point == point and self.week == week

    def trigger(self) -> None:
        import os
        import signal
        import time

        if self.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif self.kind == "hang":
            time.sleep(_HANG_SECONDS)
        else:
            raise ServiceFaultError(
                f"injected service fault at {self.point} of week {self.week}"
            )


def parse_service_fault(text: str) -> ServiceFault:
    """Parse ``kill@mid-week:7`` style specs (raises ValueError)."""
    try:
        kind, rest = text.split("@", 1)
        point, week_text = rest.rsplit(":", 1)
        week = int(week_text)
    except ValueError:
        raise ValueError(
            f"malformed service fault {text!r}; expected <kind>@<point>:<week>"
        ) from None
    if kind not in _SERVICE_FAULT_KINDS:
        raise ValueError(
            f"unknown service fault kind {kind!r};"
            f" expected one of {', '.join(_SERVICE_FAULT_KINDS)}"
        )
    if point not in SERVICE_FAULT_POINTS:
        raise ValueError(
            f"unknown service fault point {point!r};"
            f" expected one of {', '.join(SERVICE_FAULT_POINTS)}"
        )
    return ServiceFault(kind=kind, point=point, week=week)


def maybe_inject_service_fault(point: str, week: int) -> None:
    """Fire the armed service fault if it matches ``(point, week)``.

    Reads :data:`SERVICE_FAULT_ENV` on every call so child processes
    inherit the arming and a ``--resume`` restart without the variable
    runs clean.
    """
    import os

    text = os.environ.get(SERVICE_FAULT_ENV)
    if not text:
        return
    fault = parse_service_fault(text)
    if fault.matches(point, week):
        fault.trigger()
