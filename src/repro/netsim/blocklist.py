"""Scan exclusion blocklist (paper Appendix A ethics measures).

The paper filters a local blocklist built from exclusion requests
before any ZMap scan.  The simulated Internet marks some prefixes as
opt-outs; scanners must honour them, and a test asserts no probe ever
reaches a blocked address.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.netsim.addresses import Address, Prefix

__all__ = ["Blocklist"]


class Blocklist:
    """A set of excluded prefixes with membership checks."""

    def __init__(self, prefixes: Iterable[Prefix] = ()):
        self._prefixes: List[Prefix] = list(prefixes)
        self._masks: Dict[int, Tuple[Tuple[int, int], ...]] = {}

    def add(self, prefix: Prefix) -> None:
        self._prefixes.append(prefix)
        self._masks.clear()

    def match_masks(self, version: int) -> Tuple[Tuple[int, int], ...]:
        """Per-family ``(net_mask, network_value)`` pairs for fast checks.

        Membership reduces to ``value & mask == network``; the pairs are
        cached because sweep loops consult the blocklist once per probed
        address and ``Prefix.net_mask`` recomputes masks on every call.
        """
        cached = self._masks.get(version)
        if cached is None:
            cached = tuple(
                (prefix.net_mask(), prefix.network.value)
                for prefix in self._prefixes
                if prefix.network.version == version
            )
            self._masks[version] = cached
        return cached

    def is_blocked(self, address: Address) -> bool:
        value = address.value
        return any(
            value & mask == network
            for mask, network in self.match_masks(address.version)
        )

    def __len__(self) -> int:
        return len(self._prefixes)

    def prefixes(self) -> List[Prefix]:
        return list(self._prefixes)
