"""Scan exclusion blocklist (paper Appendix A ethics measures).

The paper filters a local blocklist built from exclusion requests
before any ZMap scan.  The simulated Internet marks some prefixes as
opt-outs; scanners must honour them, and a test asserts no probe ever
reaches a blocked address.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.netsim.addresses import Address, Prefix

__all__ = ["Blocklist"]


class Blocklist:
    """A set of excluded prefixes with membership checks."""

    def __init__(self, prefixes: Iterable[Prefix] = ()):
        self._prefixes: List[Prefix] = list(prefixes)

    def add(self, prefix: Prefix) -> None:
        self._prefixes.append(prefix)

    def is_blocked(self, address: Address) -> bool:
        return any(prefix.contains(address) for prefix in self._prefixes)

    def __len__(self) -> int:
        return len(self._prefixes)

    def prefixes(self) -> List[Prefix]:
        return list(self._prefixes)
