"""Deterministic simulated Internet substrate.

The paper scans the real Internet; this repository substitutes a
simulated one (see DESIGN.md §2).  The substrate provides:

- :mod:`repro.netsim.addresses` — IPv4/IPv6 addresses and prefixes,
- :mod:`repro.netsim.asn` — autonomous systems, announced prefixes and
  longest-prefix-match origin lookup (the paper's per-AS analyses),
- :mod:`repro.netsim.topology` — the network itself: endpoint
  registration, UDP datagram delivery, TCP-like stream sessions, a
  virtual clock, loss/latency conditions and middleboxes,
- :mod:`repro.netsim.blocklist` — scan exclusion lists (Appendix A
  ethics: the paper filters a local blocklist),
- :mod:`repro.netsim.faults` — composable, deterministic fault
  profiles (burst loss, rate limits, UDP blackholes, truncation,
  corruption, flapping, crashes) for chaos campaigns,
- :mod:`repro.netsim.paths` — named path-condition profiles
  (geo-satellite, lossy-edge, bufferbloat, asymmetric) with
  token-bucket rate limiting and bounded drop-tail queues, the
  substrate of the ``repro matrix`` scenario sweeps.
"""

from repro.netsim.addresses import IPv4Address, IPv6Address, Prefix
from repro.netsim.asn import AutonomousSystem, AsRegistry
from repro.netsim.blocklist import Blocklist
from repro.netsim.faults import PROFILES, FaultProfile, apply_profile, get_profile
from repro.netsim.paths import (
    PATH_PROFILES,
    PathSpec,
    PathSpecError,
    apply_path_profile,
    get_path_profile,
    parse_path_spec,
)
from repro.netsim.topology import Network, NetworkConditions, UdpEndpoint

__all__ = [
    "IPv4Address",
    "IPv6Address",
    "Prefix",
    "AutonomousSystem",
    "AsRegistry",
    "Blocklist",
    "Network",
    "NetworkConditions",
    "UdpEndpoint",
    "FaultProfile",
    "PROFILES",
    "apply_profile",
    "get_profile",
    "PATH_PROFILES",
    "PathSpec",
    "PathSpecError",
    "apply_path_profile",
    "get_path_profile",
    "parse_path_spec",
]
