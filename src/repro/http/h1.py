"""HTTP/1.1 message formatting and parsing.

Used by the Goscanner-style TLS-over-TCP scans: after the TLS
handshake the scanner issues a request and reads the response headers,
including ``Alt-Svc`` and ``Server``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["HttpRequest", "HttpResponse", "HttpParseError"]


class HttpParseError(ValueError):
    """Raised on malformed HTTP/1.1 messages."""


def _encode_headers(headers: List[Tuple[str, str]]) -> bytes:
    return b"".join(f"{name}: {value}\r\n".encode() for name, value in headers)


def _decode_headers(lines: List[bytes]) -> List[Tuple[str, str]]:
    headers = []
    for line in lines:
        name, sep, value = line.partition(b":")
        if not sep:
            raise HttpParseError(f"malformed header line: {line!r}")
        headers.append((name.decode().strip(), value.decode().strip()))
    return headers


@dataclass
class HttpRequest:
    method: str = "HEAD"
    target: str = "/"
    headers: List[Tuple[str, str]] = field(default_factory=list)
    body: bytes = b""

    def encode(self) -> bytes:
        head = f"{self.method} {self.target} HTTP/1.1\r\n".encode()
        return head + _encode_headers(self.headers) + b"\r\n" + self.body

    @classmethod
    def decode(cls, data: bytes) -> "HttpRequest":
        head, sep, body = data.partition(b"\r\n\r\n")
        if not sep:
            raise HttpParseError("missing header terminator")
        lines = head.split(b"\r\n")
        try:
            method, target, version = lines[0].decode().split(" ", 2)
        except ValueError as exc:
            raise HttpParseError(f"bad request line: {lines[0]!r}") from exc
        if not version.startswith("HTTP/1."):
            raise HttpParseError(f"unsupported version {version}")
        return cls(
            method=method, target=target, headers=_decode_headers(lines[1:]), body=body
        )

    def header(self, name: str) -> Optional[str]:
        lowered = name.lower()
        for header_name, value in self.headers:
            if header_name.lower() == lowered:
                return value
        return None


@dataclass
class HttpResponse:
    status: int = 200
    reason: str = "OK"
    headers: List[Tuple[str, str]] = field(default_factory=list)
    body: bytes = b""

    def encode(self) -> bytes:
        head = f"HTTP/1.1 {self.status} {self.reason}\r\n".encode()
        return head + _encode_headers(self.headers) + b"\r\n" + self.body

    @classmethod
    def decode(cls, data: bytes) -> "HttpResponse":
        head, sep, body = data.partition(b"\r\n\r\n")
        if not sep:
            raise HttpParseError("missing header terminator")
        lines = head.split(b"\r\n")
        parts = lines[0].decode().split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise HttpParseError(f"bad status line: {lines[0]!r}")
        status = int(parts[1])
        reason = parts[2] if len(parts) > 2 else ""
        return cls(
            status=status, reason=reason, headers=_decode_headers(lines[1:]), body=body
        )

    def header(self, name: str) -> Optional[str]:
        lowered = name.lower()
        for header_name, value in self.headers:
            if header_name.lower() == lowered:
                return value
        return None
