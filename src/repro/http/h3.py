"""Minimal HTTP/3 (RFC 9114): SETTINGS, HEADERS/DATA frames, HEAD exchange.

The QScanner issues an HTTP/3 HEAD request on request stream 0 after a
successful QUIC handshake and records the response headers (§5.2 uses
the ``server`` header to identify implementations).  This module
implements the frame layer and request/response header blocks over
QPACK; stream transport is provided by :mod:`repro.quic.connection`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.http.qpack import decode_header_block, encode_header_block
from repro.quic.varint import Buffer

__all__ = [
    "H3FrameType",
    "encode_frame",
    "decode_frames",
    "encode_head_request",
    "decode_request",
    "encode_response",
    "decode_response",
    "encode_control_stream",
    "H3Error",
    "H3Response",
]


class H3Error(ValueError):
    """Raised on malformed HTTP/3 payloads."""


class H3FrameType:
    DATA = 0x0
    HEADERS = 0x1
    SETTINGS = 0x4
    GOAWAY = 0x7


def encode_frame(frame_type: int, payload: bytes) -> bytes:
    buf = Buffer()
    buf.push_varint(frame_type)
    buf.push_varint(len(payload))
    buf.push_bytes(payload)
    return buf.data()


def decode_frames(data: bytes) -> List[Tuple[int, bytes]]:
    buf = Buffer(data)
    frames = []
    try:
        while not buf.eof():
            frame_type = buf.pull_varint()
            length = buf.pull_varint()
            frames.append((frame_type, buf.pull_bytes(length)))
    except ValueError as exc:
        raise H3Error(str(exc)) from exc
    return frames


def encode_control_stream(settings: Optional[Dict[int, int]] = None) -> bytes:
    """Unidirectional control stream: type 0x00 then a SETTINGS frame."""
    buf = Buffer()
    buf.push_varint(0x00)
    payload = Buffer()
    for key, value in sorted((settings or {}).items()):
        payload.push_varint(key)
        payload.push_varint(value)
    buf.push_bytes(encode_frame(H3FrameType.SETTINGS, payload.data()))
    return buf.data()


def encode_head_request(authority: str, path: str = "/", user_agent: str = "qscanner/1.0") -> bytes:
    """A HEAD request as a HEADERS frame on the request stream."""
    headers = [
        (":method", "HEAD"),
        (":scheme", "https"),
        (":authority", authority),
        (":path", path),
        ("user-agent", user_agent),
    ]
    return encode_frame(H3FrameType.HEADERS, encode_header_block(headers))


def decode_request(data: bytes) -> List[Tuple[str, str]]:
    for frame_type, payload in decode_frames(data):
        if frame_type == H3FrameType.HEADERS:
            return decode_header_block(payload)
    raise H3Error("no HEADERS frame in request stream")


@dataclass
class H3Response:
    status: int
    headers: List[Tuple[str, str]] = field(default_factory=list)
    body: bytes = b""

    def header(self, name: str) -> Optional[str]:
        lowered = name.lower()
        for header_name, value in self.headers:
            if header_name.lower() == lowered:
                return value
        return None


def encode_response(
    status: int, headers: List[Tuple[str, str]], body: bytes = b""
) -> bytes:
    block = encode_header_block([(":status", str(status))] + headers)
    data = encode_frame(H3FrameType.HEADERS, block)
    if body:
        data += encode_frame(H3FrameType.DATA, body)
    return data


def decode_response(data: bytes) -> H3Response:
    status: Optional[int] = None
    headers: List[Tuple[str, str]] = []
    body = b""
    for frame_type, payload in decode_frames(data):
        if frame_type == H3FrameType.HEADERS:
            for name, value in decode_header_block(payload):
                if name == ":status":
                    status = int(value)
                else:
                    headers.append((name, value))
        elif frame_type == H3FrameType.DATA:
            body += payload
    if status is None:
        raise H3Error("response carries no :status")
    return H3Response(status=status, headers=headers, body=body)
