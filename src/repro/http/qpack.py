"""A QPACK subset (RFC 9204): static table + literal field lines.

HTTP/3 header blocks in this repository use only the static table and
literal representations — no dynamic table, which keeps the encoder and
decoder stateless.  This matches how scanners typically operate (a
single request per connection cannot profit from a dynamic table).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = ["encode_header_block", "decode_header_block", "QpackError", "STATIC_TABLE"]


class QpackError(ValueError):
    """Raised on malformed QPACK header blocks."""


# An excerpt of the RFC 9204 Appendix A static table: the entries the
# scanner and the simulated servers actually use.
STATIC_TABLE: List[Tuple[str, str]] = [
    (":authority", ""),           # 0
    (":path", "/"),               # 1
    ("age", "0"),                 # 2
    ("content-disposition", ""),  # 3
    ("content-length", "0"),      # 4
    ("cookie", ""),               # 5
    ("date", ""),                 # 6
    ("etag", ""),                 # 7
    ("if-modified-since", ""),    # 8
    ("if-none-match", ""),        # 9
    ("last-modified", ""),        # 10
    ("link", ""),                 # 11
    ("location", ""),             # 12
    ("referer", ""),              # 13
    ("set-cookie", ""),           # 14
    (":method", "CONNECT"),       # 15
    (":method", "DELETE"),        # 16
    (":method", "GET"),           # 17
    (":method", "HEAD"),          # 18
    (":method", "OPTIONS"),       # 19
    (":method", "POST"),          # 20
    (":method", "PUT"),           # 21
    (":scheme", "http"),          # 22
    (":scheme", "https"),         # 23
    (":status", "103"),           # 24
    (":status", "200"),           # 25
    (":status", "304"),           # 26
    (":status", "404"),           # 27
    (":status", "503"),           # 28
]

_STATIC_LOOKUP = {entry: index for index, entry in enumerate(STATIC_TABLE)}
_STATIC_NAME_LOOKUP = {}
for _index, (_name, _value) in enumerate(STATIC_TABLE):
    _STATIC_NAME_LOOKUP.setdefault(_name, _index)


def _encode_prefixed_int(value: int, prefix_bits: int, first_byte_flags: int) -> bytes:
    limit = (1 << prefix_bits) - 1
    if value < limit:
        return bytes([first_byte_flags | value])
    out = bytearray([first_byte_flags | limit])
    value -= limit
    while value >= 128:
        out.append((value % 128) + 128)
        value //= 128
    out.append(value)
    return bytes(out)


def _decode_prefixed_int(data: bytes, offset: int, prefix_bits: int) -> Tuple[int, int]:
    limit = (1 << prefix_bits) - 1
    if offset >= len(data):
        raise QpackError("truncated prefixed integer")
    value = data[offset] & limit
    offset += 1
    if value < limit:
        return value, offset
    shift = 0
    while True:
        if offset >= len(data):
            raise QpackError("truncated prefixed integer")
        byte = data[offset]
        offset += 1
        value += (byte & 0x7F) << shift
        shift += 7
        if shift > 62:  # QPACK integers must stay in a sane range
            raise QpackError("prefixed integer overflow")
        if not byte & 0x80:
            return value, offset


def _encode_string(text: str) -> bytes:
    raw = text.encode()
    return _encode_prefixed_int(len(raw), 7, 0x00) + raw  # no Huffman


def _decode_string(data: bytes, offset: int, prefix_bits: int) -> Tuple[str, int]:
    if offset >= len(data):
        raise QpackError("truncated string literal")
    huffman = bool(data[offset] & (1 << prefix_bits))
    length, offset = _decode_prefixed_int(data, offset, prefix_bits)
    if huffman:
        raise QpackError("Huffman-coded strings not supported")
    raw = data[offset : offset + length]
    if len(raw) < length:
        raise QpackError("truncated string literal")
    try:
        return raw.decode(), offset + length
    except UnicodeDecodeError as exc:
        raise QpackError("string literal is not valid UTF-8") from exc


def encode_header_block(headers: List[Tuple[str, str]]) -> bytes:
    """Encode headers using static-table references where possible."""
    # Required Insert Count = 0, Delta Base = 0 (no dynamic table).
    out = bytearray(b"\x00\x00")
    for name, value in headers:
        index = _STATIC_LOOKUP.get((name, value))
        if index is not None:
            # Indexed Field Line, static table: 1 1 T=1 index(6).
            out += _encode_prefixed_int(index, 6, 0xC0)
            continue
        name_index = _STATIC_NAME_LOOKUP.get(name)
        if name_index is not None:
            # Literal With Name Reference, static: 0101 + index(4).
            out += _encode_prefixed_int(name_index, 4, 0x50)
            out += _encode_string(value)
        else:
            # Literal With Literal Name: 001 N=0 H=0 + name(3-bit prefix).
            raw = name.encode()
            out += _encode_prefixed_int(len(raw), 3, 0x20)
            out += raw
            out += _encode_string(value)
    return bytes(out)


def decode_header_block(data: bytes) -> List[Tuple[str, str]]:
    if len(data) < 2:
        raise QpackError("header block shorter than prefix")
    offset = 2  # static-only prefix
    headers: List[Tuple[str, str]] = []
    while offset < len(data):
        first = data[offset]
        if first & 0x80:  # Indexed Field Line
            if not first & 0x40:
                raise QpackError("dynamic table reference in static-only decoder")
            index, offset = _decode_prefixed_int(data, offset, 6)
            if index >= len(STATIC_TABLE):
                raise QpackError(f"static index {index} out of range")
            headers.append(STATIC_TABLE[index])
        elif first & 0x40:  # Literal With Name Reference
            if not first & 0x10:
                raise QpackError("dynamic name reference in static-only decoder")
            index, offset = _decode_prefixed_int(data, offset, 4)
            if index >= len(STATIC_TABLE):
                raise QpackError(f"static name index {index} out of range")
            value, offset = _decode_string(data, offset, 7)
            headers.append((STATIC_TABLE[index][0], value))
        elif first & 0x20:  # Literal With Literal Name
            if first & 0x08:
                raise QpackError("Huffman-coded strings not supported")
            name_length, offset = _decode_prefixed_int(data, offset, 3)
            raw_name = data[offset : offset + name_length]
            if len(raw_name) < name_length:
                raise QpackError("truncated literal name")
            try:
                name = raw_name.decode()
            except UnicodeDecodeError as exc:
                raise QpackError("literal name is not valid UTF-8") from exc
            offset += name_length
            value, offset = _decode_string(data, offset, 7)
            headers.append((name, value))
        else:
            raise QpackError(f"unsupported field line 0x{first:02x}")
    return headers
