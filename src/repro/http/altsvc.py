"""The HTTP Alternative Services header (RFC 7838).

``Alt-Svc: h3-29=":443"; ma=86400, h3-27=":443"`` — receiving an entry
whose ALPN token indicates HTTP/3 implies QUIC support (paper §2.2),
which is the entire basis of the TLS-over-TCP discovery method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["AltSvcEntry", "parse_alt_svc", "format_alt_svc", "h3_alpn_tokens"]


@dataclass(frozen=True)
class AltSvcEntry:
    alpn: str
    host: str = ""  # empty host: same host
    port: int = 443
    max_age: Optional[int] = None

    @property
    def indicates_http3(self) -> bool:
        return self.alpn == "h3" or self.alpn.startswith("h3-") or self.alpn == "quic"


def _percent_decode(token: str) -> str:
    out = []
    i = 0
    while i < len(token):
        if token[i] == "%" and i + 2 < len(token):
            # A malformed escape (non-hex digits) is kept literally
            # rather than rejecting the whole header: scanners see
            # plenty of sloppy Alt-Svc values in the wild.
            try:
                out.append(chr(int(token[i + 1 : i + 3], 16)))
                i += 3
                continue
            except ValueError:
                pass
        out.append(token[i])
        i += 1
    return "".join(out)


def parse_alt_svc(value: str) -> List[AltSvcEntry]:
    """Parse an Alt-Svc header value into entries; 'clear' yields []."""
    value = value.strip()
    if not value or value.lower() == "clear":
        return []
    entries: List[AltSvcEntry] = []
    for part in _split_commas(value):
        fields = [f.strip() for f in part.split(";")]
        name, _, authority = fields[0].partition("=")
        authority = authority.strip().strip('"')
        host, _, port_text = authority.rpartition(":")
        try:
            port = int(port_text) if port_text else 443
        except ValueError:
            continue
        max_age: Optional[int] = None
        for param in fields[1:]:
            key, _, pvalue = param.partition("=")
            if key.strip().lower() == "ma":
                try:
                    max_age = int(pvalue.strip().strip('"'))
                except ValueError:
                    pass
        entries.append(
            AltSvcEntry(
                alpn=_percent_decode(name.strip()), host=host, port=port, max_age=max_age
            )
        )
    return entries


def _split_commas(value: str) -> List[str]:
    """Split on commas not inside quoted strings."""
    parts = []
    current = []
    in_quotes = False
    for char in value:
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
        elif char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return [p for p in (part.strip() for part in parts) if p]


def format_alt_svc(entries: List[AltSvcEntry]) -> str:
    parts = []
    for entry in entries:
        text = f'{entry.alpn}="{entry.host}:{entry.port}"'
        if entry.max_age is not None:
            text += f"; ma={entry.max_age}"
        parts.append(text)
    return ", ".join(parts)


def h3_alpn_tokens(entries: List[AltSvcEntry]) -> List[str]:
    """The QUIC-indicating ALPN tokens, preserving order, de-duplicated."""
    seen = []
    for entry in entries:
        if entry.indicates_http3 and entry.alpn not in seen:
            seen.append(entry.alpn)
    return seen
