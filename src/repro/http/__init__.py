"""HTTP substrates: HTTP/1.1 over TLS/TCP and HTTP/3 over QUIC.

- :mod:`repro.http.h1` — request/response formatting used by the
  TLS-over-TCP scans that harvest ``Alt-Svc`` headers,
- :mod:`repro.http.altsvc` — the Alt-Svc header syntax (RFC 7838),
- :mod:`repro.http.qpack` — a static-table QPACK subset,
- :mod:`repro.http.h3` — HTTP/3 frames and a HEAD exchange on a QUIC
  request stream, producing the HTTP Server headers the paper's §5.2
  edge-POP analysis is built on.
"""

from repro.http.altsvc import AltSvcEntry, format_alt_svc, parse_alt_svc
from repro.http.h1 import HttpRequest, HttpResponse

__all__ = [
    "AltSvcEntry",
    "parse_alt_svc",
    "format_alt_svc",
    "HttpRequest",
    "HttpResponse",
]
