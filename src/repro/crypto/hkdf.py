"""HKDF (RFC 5869) and the TLS 1.3 HKDF-Expand-Label construction.

These functions sit under both the TLS 1.3 key schedule (RFC 8446 §7.1)
and QUIC packet protection key derivation (RFC 9001 §5.1).
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

__all__ = ["hkdf_extract", "hkdf_expand", "hkdf_expand_label", "hmac_digest"]


# Hash block sizes for the HMAC key schedule (RFC 2104).
_BLOCK_SIZES = {"sha256": 64, "sha224": 64, "sha1": 64, "md5": 64, "sha384": 128, "sha512": 128}

# XOR-with-constant as 256-byte translation tables (bytes.translate runs
# the pad derivation at C speed).
_IPAD_TRANS = bytes(b ^ 0x36 for b in range(256))
_OPAD_TRANS = bytes(b ^ 0x5C for b in range(256))


@lru_cache(maxsize=8192)
def _hmac_contexts(key: bytes, hash_name: str):
    """Pre-seeded (inner, outer) digest contexts for an HMAC key.

    Cached so the two-block key schedule runs once per key; callers
    copy() the contexts, which is much cheaper than ``hmac.new`` and
    also skips the hmac module's per-call wrapper objects.
    """
    block = _BLOCK_SIZES.get(hash_name, 64)
    if len(key) > block:
        key = hashlib.new(hash_name, key).digest()
    key = key.ljust(block, b"\x00")
    inner = hashlib.new(hash_name, key.translate(_IPAD_TRANS))
    outer = hashlib.new(hash_name, key.translate(_OPAD_TRANS))
    return inner, outer


def hmac_digest(key: bytes, message: bytes, hash_name: str = "sha256") -> bytes:
    """HMAC with per-key context caching (RFC 2104 construction).

    The handshake hot path computes thousands of HMACs over a small set
    of keys (key-schedule secrets, AEAD keys); copying cached keyed
    contexts skips the two hash-block key setup every call would pay.
    """
    inner, outer = _hmac_contexts(key, hash_name)
    ih = inner.copy()
    ih.update(message)
    oh = outer.copy()
    oh.update(ih.digest())
    return oh.digest()


@lru_cache(maxsize=8192)
def hkdf_extract(salt: bytes, ikm: bytes, hash_name: str = "sha256") -> bytes:
    """HKDF-Extract: PRK = HMAC-Hash(salt, IKM).

    Memoised: QUIC Initial secrets extract the per-connection DCID
    against a fixed version salt, and the TLS key schedule re-extracts
    identical (salt, IKM) pairs on both sides of every simulated
    handshake.
    """
    if not salt:
        salt = bytes(hashlib.new(hash_name).digest_size)
    return hmac_digest(salt, ikm, hash_name)


def hkdf_expand(
    prk: bytes, info: bytes, length: int, hash_name: str = "sha256"
) -> bytes:
    """HKDF-Expand: derive ``length`` bytes of output keying material."""
    hash_len = hashlib.new(hash_name).digest_size
    if length > 255 * hash_len:
        raise ValueError("HKDF-Expand output too long")
    blocks = []
    previous = b""
    counter = 1
    produced = 0
    while produced < length:
        previous = hmac_digest(prk, previous + info + bytes([counter]), hash_name)
        blocks.append(previous)
        produced += len(previous)
        counter += 1
    return b"".join(blocks)[:length]


@lru_cache(maxsize=8192)
def hkdf_expand_label(
    secret: bytes,
    label: bytes,
    context: bytes,
    length: int,
    hash_name: str = "sha256",
) -> bytes:
    """TLS 1.3 HKDF-Expand-Label (RFC 8446 §7.1).

    The label is prefixed with ``"tls13 "`` per the RFC; QUIC passes
    labels such as ``b"quic key"`` through this same construction
    (RFC 9001 §5.1).

    Memoised because every packet-protection key ladder expands the
    same handful of (secret, label) pairs on both endpoints.
    """
    full_label = b"tls13 " + label
    hkdf_label = (
        length.to_bytes(2, "big")
        + bytes([len(full_label)])
        + full_label
        + bytes([len(context)])
        + context
    )
    return hkdf_expand(secret, hkdf_label, length, hash_name)
