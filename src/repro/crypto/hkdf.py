"""HKDF (RFC 5869) and the TLS 1.3 HKDF-Expand-Label construction.

These functions sit under both the TLS 1.3 key schedule (RFC 8446 §7.1)
and QUIC packet protection key derivation (RFC 9001 §5.1).
"""

from __future__ import annotations

import hashlib
import hmac
from functools import lru_cache

__all__ = ["hkdf_extract", "hkdf_expand", "hkdf_expand_label"]


@lru_cache(maxsize=8192)
def hkdf_extract(salt: bytes, ikm: bytes, hash_name: str = "sha256") -> bytes:
    """HKDF-Extract: PRK = HMAC-Hash(salt, IKM).

    Memoised: QUIC Initial secrets extract the per-connection DCID
    against a fixed version salt, and the TLS key schedule re-extracts
    identical (salt, IKM) pairs on both sides of every simulated
    handshake.
    """
    if not salt:
        salt = bytes(hashlib.new(hash_name).digest_size)
    return hmac.new(salt, ikm, hash_name).digest()


def hkdf_expand(
    prk: bytes, info: bytes, length: int, hash_name: str = "sha256"
) -> bytes:
    """HKDF-Expand: derive ``length`` bytes of output keying material."""
    hash_len = hashlib.new(hash_name).digest_size
    if length > 255 * hash_len:
        raise ValueError("HKDF-Expand output too long")
    blocks = []
    previous = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        previous = hmac.new(prk, previous + info + bytes([counter]), hash_name).digest()
        blocks.append(previous)
        counter += 1
    return b"".join(blocks)[:length]


@lru_cache(maxsize=8192)
def hkdf_expand_label(
    secret: bytes,
    label: bytes,
    context: bytes,
    length: int,
    hash_name: str = "sha256",
) -> bytes:
    """TLS 1.3 HKDF-Expand-Label (RFC 8446 §7.1).

    The label is prefixed with ``"tls13 "`` per the RFC; QUIC passes
    labels such as ``b"quic key"`` through this same construction
    (RFC 9001 §5.1).

    Memoised because every packet-protection key ladder expands the
    same handful of (secret, label) pairs on both endpoints.
    """
    full_label = b"tls13 " + label
    hkdf_label = (
        length.to_bytes(2, "big")
        + bytes([len(full_label)])
        + full_label
        + bytes([len(context)])
        + context
    )
    return hkdf_expand(secret, hkdf_label, length, hash_name)
