"""X25519 Diffie-Hellman (RFC 7748), implemented from scratch.

Used as the (single) supported TLS 1.3 key-exchange group, mirroring
the paper's scanners which offered X25519 and found it accepted by
close to all targets (§5.1).
"""

from __future__ import annotations

__all__ = ["x25519", "x25519_base", "X25519_BASEPOINT"]

_P = 2**255 - 19
_A24 = 121665

X25519_BASEPOINT = (9).to_bytes(32, "little")


def _decode_scalar(scalar: bytes) -> int:
    if len(scalar) != 32:
        raise ValueError("X25519 scalar must be 32 bytes")
    k = bytearray(scalar)
    k[0] &= 248
    k[31] &= 127
    k[31] |= 64
    return int.from_bytes(bytes(k), "little")


def _decode_u(u: bytes) -> int:
    if len(u) != 32:
        raise ValueError("X25519 u-coordinate must be 32 bytes")
    value = int.from_bytes(u, "little")
    value &= (1 << 255) - 1  # mask the high bit per RFC 7748
    return value % _P


def x25519(scalar: bytes, u: bytes) -> bytes:
    """The X25519 function: scalar multiplication on Curve25519."""
    k = _decode_scalar(scalar)
    x1 = _decode_u(u)
    x2, z2 = 1, 0
    x3, z3 = x1, 1
    swap = 0
    for t in range(254, -1, -1):
        k_t = (k >> t) & 1
        swap ^= k_t
        if swap:
            x2, x3 = x3, x2
            z2, z3 = z3, z2
        swap = k_t
        # Montgomery ladder step.
        a = (x2 + z2) % _P
        aa = (a * a) % _P
        b = (x2 - z2) % _P
        bb = (b * b) % _P
        e = (aa - bb) % _P
        c = (x3 + z3) % _P
        d = (x3 - z3) % _P
        da = (d * a) % _P
        cb = (c * b) % _P
        x3 = (da + cb) % _P
        x3 = (x3 * x3) % _P
        z3 = (da - cb) % _P
        z3 = (x1 * z3 * z3) % _P
        x2 = (aa * bb) % _P
        z2 = (e * (aa + _A24 * e)) % _P
    if swap:
        x2, x3 = x3, x2
        z2, z3 = z3, z2
    result = (x2 * pow(z2, _P - 2, _P)) % _P
    return result.to_bytes(32, "little")


def x25519_base(scalar: bytes) -> bytes:
    """Scalar multiplication with the curve base point (public key)."""
    return x25519(scalar, X25519_BASEPOINT)
