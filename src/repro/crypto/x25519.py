"""X25519 Diffie-Hellman (RFC 7748), implemented from scratch.

Used as the (single) supported TLS 1.3 key-exchange group, mirroring
the paper's scanners which offered X25519 and found it accepted by
close to all targets (§5.1).
"""

from __future__ import annotations

__all__ = ["x25519", "x25519_base", "X25519_BASEPOINT"]

_P = 2**255 - 19
_A24 = 121665

X25519_BASEPOINT = (9).to_bytes(32, "little")


def _decode_scalar(scalar: bytes) -> int:
    if len(scalar) != 32:
        raise ValueError("X25519 scalar must be 32 bytes")
    k = bytearray(scalar)
    k[0] &= 248
    k[31] &= 127
    k[31] |= 64
    return int.from_bytes(bytes(k), "little")


def _decode_u(u: bytes) -> int:
    if len(u) != 32:
        raise ValueError("X25519 u-coordinate must be 32 bytes")
    value = int.from_bytes(u, "little")
    value &= (1 << 255) - 1  # mask the high bit per RFC 7748
    return value % _P


def x25519(scalar: bytes, u: bytes) -> bytes:
    """The X25519 function: scalar multiplication on Curve25519."""
    k = _decode_scalar(scalar)
    x1 = _decode_u(u)
    x2, z2 = 1, 0
    x3, z3 = x1, 1
    swap = 0
    for t in range(254, -1, -1):
        k_t = (k >> t) & 1
        swap ^= k_t
        if swap:
            x2, x3 = x3, x2
            z2, z3 = z3, z2
        swap = k_t
        # Montgomery ladder step.
        a = (x2 + z2) % _P
        aa = (a * a) % _P
        b = (x2 - z2) % _P
        bb = (b * b) % _P
        e = (aa - bb) % _P
        c = (x3 + z3) % _P
        d = (x3 - z3) % _P
        da = (d * a) % _P
        cb = (c * b) % _P
        x3 = (da + cb) % _P
        x3 = (x3 * x3) % _P
        z3 = (da - cb) % _P
        z3 = (x1 * z3 * z3) % _P
        x2 = (aa * bb) % _P
        z2 = (e * (aa + _A24 * e)) % _P
    if swap:
        x2, x3 = x3, x2
        z2, z3 = z3, z2
    # pow(z, -1, p) uses extended-gcd inversion, ~20x faster than the
    # Fermat exponentiation for this one-off final inversion.
    result = (x2 * pow(z2, -1, _P)) % _P
    return result.to_bytes(32, "little")


# --- Fixed-base scalar multiplication ---------------------------------
#
# Public-key generation (``x25519_base``) runs once per ClientHello and
# dominated the handshake hot path when done with the generic Montgomery
# ladder (255 ladder steps).  Because the base point is fixed we can use
# a comb over the birationally-equivalent twisted Edwards curve
# (Ed25519): precompute j * 2^(w*i) * B for all 256/w w-bit windows i
# and digits j in 1..2^w-1, then any clamped scalar costs at most 256/w
# cached point additions (w = 8 below: 32 additions, ~2 MB of table
# built lazily on first use).  The Montgomery u-coordinate of the
# result is recovered as u = (Z + Y) / (Z - Y); negating a point leaves
# u unchanged, so the comb output matches the ladder bit-for-bit.
#
# The a = -1 extended-coordinate formulas below are complete on
# Ed25519 (d is a non-square), so no special-casing is needed while
# building the table or walking the comb.

_ED_D2 = (2 * 37095705934669439343138083508754565189542113879843219016388785533085940283555) % _P
_ED_BX = 15112221349535400772501151409588531511454012693041857206046113283949847762202
_ED_BY = 46316835694926478169428394003475163141307993866256225615783033603165251855960

_COMB_WINDOW_BITS = 8
_COMB_WINDOWS = 256 // _COMB_WINDOW_BITS
_COMB_DIGITS = (1 << _COMB_WINDOW_BITS) - 1
_COMB_TABLE = None


def _ed_add(p1, p2):
    """Extended-coordinate point addition (add-2008-hwcd-3, a = -1)."""
    x1, y1, z1, t1 = p1
    x2, y2, z2, t2 = p2
    a = ((y1 - x1) * (y2 - x2)) % _P
    b = ((y1 + x1) * (y2 + x2)) % _P
    c = (t1 * _ED_D2 * t2) % _P
    d = (2 * z1 * z2) % _P
    e = b - a
    f = d - c
    g = d + c
    h = b + a
    return (e * f) % _P, (g * h) % _P, (f * g) % _P, (e * h) % _P


def _ed_double(p):
    """Extended-coordinate point doubling (dbl-2008-hwcd, a = -1)."""
    x1, y1, z1, _ = p
    a = (x1 * x1) % _P
    b = (y1 * y1) % _P
    c = (2 * z1 * z1) % _P
    e = ((x1 + y1) * (x1 + y1) - a - b) % _P
    g = (b - a) % _P
    f = (g - c) % _P
    h = (-b - a) % _P
    return (e * f) % _P, (g * h) % _P, (f * g) % _P, (e * h) % _P


def _comb_table():
    """Lazily build the (256/w) x (2^w - 1) niels-form fixed-base table."""
    global _COMB_TABLE
    if _COMB_TABLE is not None:
        return _COMB_TABLE
    extended = []
    window_base = (_ED_BX, _ED_BY, 1, (_ED_BX * _ED_BY) % _P)
    for _ in range(_COMB_WINDOWS):
        point = window_base
        for _ in range(_COMB_DIGITS):
            extended.append(point)
            point = _ed_add(point, window_base)
        for _ in range(_COMB_WINDOW_BITS):
            window_base = _ed_double(window_base)
    # Normalise every point to affine niels form (y+x, y-x, 2dxy) so
    # comb additions become mixed additions with Z2 = 1.  All the
    # inversions share one extended-gcd inversion via Montgomery's
    # batch-inversion trick — table setup is on the cold-start path.
    prefix = []
    acc = 1
    for _x, _y, z, _t in extended:
        prefix.append(acc)
        acc = (acc * z) % _P
    inv_acc = pow(acc, -1, _P)
    inverses = [0] * len(extended)
    for index in range(len(extended) - 1, -1, -1):
        inverses[index] = (inv_acc * prefix[index]) % _P
        inv_acc = (inv_acc * extended[index][2]) % _P
    table = []
    for window in range(_COMB_WINDOWS):
        row = []
        for digit in range(_COMB_DIGITS):
            x, y, _z, _t = extended[window * _COMB_DIGITS + digit]
            inv_z = inverses[window * _COMB_DIGITS + digit]
            ax = (x * inv_z) % _P
            ay = (y * inv_z) % _P
            row.append(((ay + ax) % _P, (ay - ax) % _P, (_ED_D2 * ax * ay) % _P))
        table.append(tuple(row))
    _COMB_TABLE = tuple(table)
    return _COMB_TABLE


def _ed_add_niels(p1, niels):
    """Mixed addition: extended point + affine niels precomputed point."""
    x1, y1, z1, t1 = p1
    ypx, ymx, xy2d = niels
    a = ((y1 - x1) * ymx) % _P
    b = ((y1 + x1) * ypx) % _P
    c = (t1 * xy2d) % _P
    d = (2 * z1) % _P
    e = b - a
    f = d - c
    g = d + c
    h = b + a
    return (e * f) % _P, (g * h) % _P, (f * g) % _P, (e * h) % _P


def x25519_base(scalar: bytes) -> bytes:
    """Scalar multiplication with the curve base point (public key)."""
    k = _decode_scalar(scalar)
    table = _comb_table()
    point = (0, 1, 1, 0)  # neutral element
    for window in range(_COMB_WINDOWS):
        digit = (k >> (_COMB_WINDOW_BITS * window)) & _COMB_DIGITS
        if digit:
            point = _ed_add_niels(point, table[window][digit - 1])
    _x, y, z, _t = point
    # Montgomery u = (1 + y) / (1 - y) with projective y = Y/Z.  A
    # clamped scalar is a multiple of 8 in [2^254, 2^255), so the result
    # is never the neutral element and Z - Y is invertible.
    u = ((z + y) * pow(z - y, -1, _P)) % _P
    return u.to_bytes(32, "little")
