"""AES-GCM authenticated encryption (NIST SP 800-38D), from scratch.

GHASH is implemented with a per-key 8-bit table (256 precomputed
multiples of the hash subkey per byte position folded via the classic
shift-based method), which keeps authentication cost at pure-Python
scale acceptable for handshake workloads.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Tuple

from repro.crypto.aes import AES

__all__ = ["AesGcm", "GcmAuthenticationError", "xor_bytes"]


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings via single big-int ops."""
    n = len(a)
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(n, "big")


class GcmAuthenticationError(Exception):
    """Raised when a GCM tag fails verification."""


# The GCM reduction polynomial, bit-reflected:  x^128 + x^7 + x^2 + x + 1.
_R = 0xE1000000000000000000000000000000


def _gcm_mult(x: int, y: int) -> int:
    """Carry-less multiply of two 128-bit elements in the GCM field."""
    z = 0
    v = y
    for i in range(127, -1, -1):
        if (x >> i) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


@lru_cache(maxsize=1024)
def _build_table(h: int) -> Tuple[Tuple[int, ...], ...]:
    """Precompute tables[i][n] = (n << (4 * i)) * H for fast GHASH.

    The 128 single-bit products form a "divide by x" chain starting at
    H (mirroring the shift step of :func:`_gcm_mult`), so table
    construction needs only cheap shifts plus a subset-XOR fill over 32
    nibble positions — no full field multiplications.  Nibble (4-bit)
    tables trade a little per-block speed for an 8x cheaper setup,
    which matters because QUIC derives fresh AEAD instances for every
    connection.  Tables are additionally memoised per subkey: Initial
    secrets are a pure function of the client DCID, so scans revisit
    the same subkeys constantly.
    """
    products = [0] * 128
    v = h
    for bit_index in range(127, -1, -1):
        products[bit_index] = v
        v = (v >> 1) ^ _R if v & 1 else v >> 1
    tables: List[Tuple[int, ...]] = []
    for nibble_pos in range(32):
        row = [0] * 16
        for bit in range(4):
            product = products[4 * nibble_pos + bit]
            stride = 1 << bit
            for base in range(0, 16, 2 * stride):
                for offset in range(stride):
                    row[base + stride + offset] = row[base + offset] ^ product
        tables.append(tuple(row))
    return tuple(tables)


class _Ghash:
    """Incremental GHASH over the hash subkey ``h``."""

    def __init__(self, h: bytes):
        self._tables = _build_table(int.from_bytes(h, "big"))
        self._state = 0

    def update(self, data: bytes) -> None:
        tables = self._tables
        state = self._state
        for block_start in range(0, len(data), 16):
            block = data[block_start : block_start + 16]
            if len(block) < 16:
                block = block + bytes(16 - len(block))
            state ^= int.from_bytes(block, "big")
            acc = 0
            for i in range(32):
                acc ^= tables[i][(state >> (4 * i)) & 0xF]
            state = acc
        self._state = state

    def digest(self) -> bytes:
        return self._state.to_bytes(16, "big")

    def reset(self) -> None:
        self._state = 0


class AesGcm:
    """AES-GCM with a 128 or 256 bit key and 12-byte nonces.

    The tag length is fixed at 16 bytes as required by TLS 1.3 and QUIC.
    """

    tag_length = 16

    def __init__(self, key: bytes):
        self._aes = AES(key)
        self._ghash = _Ghash(self._aes.encrypt_block(bytes(16)))

    def _ctr_keystream(self, nonce: bytes, length: int) -> bytes:
        # Counter 1 is reserved for the tag mask; all counter blocks for
        # one message are assembled up front and encrypted in a single
        # batched ECB call.
        counter_blocks = b"".join(
            nonce + counter.to_bytes(4, "big")
            for counter in range(2, 2 + (length + 15) // 16)
        )
        return self._aes.encrypt_blocks(counter_blocks)[:length]

    def _tag(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        ghash = self._ghash
        ghash.reset()
        ghash.update(aad)
        ghash.update(ciphertext)
        lengths = (len(aad) * 8).to_bytes(8, "big") + (len(ciphertext) * 8).to_bytes(
            8, "big"
        )
        ghash.update(lengths)
        digest = ghash.digest()
        mask = self._aes.encrypt_block(nonce + b"\x00\x00\x00\x01")
        return xor_bytes(digest, mask)

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate; returns ciphertext || 16-byte tag."""
        if len(nonce) != 12:
            raise ValueError("GCM nonce must be 12 bytes")
        keystream = self._ctr_keystream(nonce, len(plaintext))
        ciphertext = xor_bytes(plaintext, keystream)
        return ciphertext + self._tag(nonce, aad, ciphertext)

    def decrypt(
        self, nonce: bytes, data: bytes, aad: bytes = b""
    ) -> Optional[bytes]:
        """Verify and decrypt ciphertext || tag; raises on tag mismatch."""
        if len(nonce) != 12:
            raise ValueError("GCM nonce must be 12 bytes")
        if len(data) < self.tag_length:
            raise GcmAuthenticationError("ciphertext shorter than tag")
        ciphertext, tag = data[: -self.tag_length], data[-self.tag_length :]
        expected = self._tag(nonce, aad, ciphertext)
        if not _constant_time_equal(tag, expected):
            raise GcmAuthenticationError("GCM tag mismatch")
        keystream = self._ctr_keystream(nonce, len(ciphertext))
        return xor_bytes(ciphertext, keystream)


def _constant_time_equal(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    result = 0
    for x, y in zip(a, b):
        result |= x ^ y
    return result == 0
