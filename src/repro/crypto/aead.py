"""Pluggable AEAD interface for QUIC/TLS record protection.

Two providers exist:

- :class:`AeadAes128Gcm` — real AES-128-GCM, validated against the
  RFC 9001 Appendix A test vectors.  Always used for QUIC Initial
  packet protection (the long-header packets the paper's ZMap module
  and QScanner emit on the wire are bit-exact RFC 9001 packets).
- :class:`AeadSim` — a fast simulation AEAD (SHA-256 counter keystream
  with an HMAC-SHA256 tag truncated to 16 bytes).  Negotiated only via
  the repository's private cipher-suite code point and only between our
  own client and server stacks, this keeps campaign-scale scans (tens
  of thousands of full handshakes) tractable in pure Python.  The
  substitution is recorded in DESIGN.md and an ablation benchmark
  quantifies the handshake-rate difference.

Both providers expose the same interface so the QUIC/TLS engines are
agnostic to which is in use.
"""

from __future__ import annotations

import hashlib
import hmac
from functools import lru_cache

from repro.crypto.gcm import AesGcm, GcmAuthenticationError, xor_bytes
from repro.crypto.hkdf import hmac_digest

__all__ = [
    "AeadError",
    "AeadAes128Gcm",
    "AeadSim",
    "aead_for_suite",
    "header_mask_aes",
    "header_mask_sim",
]


class AeadError(Exception):
    """Raised when AEAD open (decryption) fails authentication."""


class AeadAes128Gcm:
    """AES-GCM AEAD (16-byte keys for AES-128, 32 for AES-256)."""

    tag_length = 16

    def __init__(self, key: bytes):
        self._gcm = AesGcm(key)

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes) -> bytes:
        return self._gcm.encrypt(nonce, plaintext, aad)

    def open(self, nonce: bytes, ciphertext: bytes, aad: bytes) -> bytes:
        try:
            plaintext = self._gcm.decrypt(nonce, ciphertext, aad)
        except GcmAuthenticationError as exc:
            raise AeadError(str(exc)) from exc
        assert plaintext is not None
        return plaintext


class AeadSim:
    """Fast simulated AEAD: SHAKE-256 keystream + truncated HMAC tag.

    Not a real cipher — used only between this repository's own
    endpoints to model record protection at campaign scale.  It
    preserves the properties the measurement pipeline depends on:
    ciphertext is key-dependent, unauthentic data is rejected, and
    lengths match AES-GCM (16-byte expansion).  The keystream is one
    SHAKE-256 XOF call over (key || nonce) — a single C-level squeeze
    instead of a Python loop of per-block SHA-256 calls, which
    dominated record protection at campaign scale.
    """

    tag_length = 16

    def __init__(self, key: bytes):
        self._key = key

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        return hashlib.shake_256(self._key + nonce).digest(length)

    def _tag(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        return hmac_digest(self._key, nonce + aad + ciphertext)[:16]

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes) -> bytes:
        keystream = self._keystream(nonce, len(plaintext))
        ciphertext = xor_bytes(plaintext, keystream)
        return ciphertext + self._tag(nonce, aad, ciphertext)

    def open(self, nonce: bytes, data: bytes, aad: bytes) -> bytes:
        if len(data) < self.tag_length:
            raise AeadError("ciphertext shorter than tag")
        ciphertext, tag = data[: -self.tag_length], data[-self.tag_length :]
        if not hmac.compare_digest(tag, self._tag(nonce, aad, ciphertext)):
            raise AeadError("simulated AEAD tag mismatch")
        keystream = self._keystream(nonce, len(ciphertext))
        return xor_bytes(ciphertext, keystream)


@lru_cache(maxsize=1024)
def _hp_cipher(hp_key: bytes):
    """One AES instance per header-protection key.

    Header protection runs once per packet in both directions, always
    with the same few keys per connection; constructing a fresh cipher
    per mask dominated the hot path.
    """
    from repro.crypto.aes import AES

    return AES(hp_key)


@lru_cache(maxsize=4096)
def _hp_mask_aes(hp_key: bytes, sample16: bytes) -> bytes:
    return _hp_cipher(hp_key).encrypt_block(sample16)[:5]


def header_mask_aes(hp_key: bytes, sample: bytes) -> bytes:
    """QUIC header-protection mask via AES-ECB (RFC 9001 §5.4.3).

    Masks are cached per (key, sample): in the simulated network the
    receiving endpoint unprotects exactly the bytes the sender just
    protected, so every mask is computed once and looked up once.
    """
    return _hp_mask_aes(hp_key, sample[:16])


def header_mask_sim(hp_key: bytes, sample: bytes) -> bytes:
    """Header-protection mask for the simulated AEAD (keyed hash)."""
    return hashlib.sha256(hp_key + sample[:16]).digest()[:5]


def header_mask_chacha(hp_key: bytes, sample: bytes) -> bytes:
    """QUIC header-protection mask via ChaCha20 (RFC 9001 §5.4.4).

    The first 4 sample bytes are the block counter (little endian), the
    remaining 12 the nonce; the mask is the start of the keystream.
    """
    from repro.crypto.chacha import chacha20_block

    counter = int.from_bytes(sample[0:4], "little")
    nonce = sample[4:16]
    return chacha20_block(hp_key, counter, nonce)[:5]


def aead_for_suite(suite_name: str, key: bytes):
    """Instantiate the AEAD matching a cipher-suite name."""
    if suite_name in ("TLS_AES_128_GCM_SHA256", "TLS_AES_256_GCM_SHA384"):
        return AeadAes128Gcm(key)
    if suite_name == "TLS_CHACHA20_POLY1305_SHA256":
        from repro.crypto.chacha import ChaCha20Poly1305

        return ChaCha20Poly1305(key)
    if suite_name == "TLS_SIM_SHA256":
        return AeadSim(key)
    raise ValueError(f"unknown cipher suite: {suite_name}")
