"""Probabilistic prime generation (Miller-Rabin) for the RSA substrate."""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["is_probable_prime", "generate_prime"]

_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
]


def is_probable_prime(n: int, rounds: int = 24, rng: Optional[random.Random] = None) -> bool:
    """Miller-Rabin primality test with ``rounds`` random witnesses."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    rng = rng or random.Random()
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: random.Random) -> int:
    """Generate a random probable prime with exactly ``bits`` bits."""
    if bits < 8:
        raise ValueError("prime size too small")
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | 1  # correct size, odd
        if is_probable_prime(candidate, rng=rng):
            return candidate
