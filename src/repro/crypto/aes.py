"""The AES block cipher (FIPS 197), implemented from scratch.

Only encryption is required by this repository: AES-GCM uses the
forward cipher for both directions (CTR mode), and QUIC header
protection (RFC 9001 §5.4.3) applies the forward cipher to a sample of
ciphertext.  Decryption of single blocks is provided for completeness
and for tests.

The implementation is table based (T-tables folded into the S-box and
the MixColumns matrix) which keeps pure-Python performance acceptable
for handshake-scale workloads.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Tuple

__all__ = ["AES"]

# ---------------------------------------------------------------------------
# S-box generation.  We derive the S-box from first principles (inverse in
# GF(2^8) followed by the affine transform) rather than embedding a table of
# magic numbers, and verify a couple of well-known entries at import time.
# ---------------------------------------------------------------------------


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial."""
    p = 0
    for _ in range(8):
        if b & 1:
            p ^= a
        carry = a & 0x80
        a = (a << 1) & 0xFF
        if carry:
            a ^= 0x1B
        b >>= 1
    return p


def _gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(2^8); inverse of 0 is defined as 0."""
    if a == 0:
        return 0
    # a^(2^8 - 2) == a^254 is the inverse (Fermat).
    result = 1
    base = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = _gf_mul(result, base)
        base = _gf_mul(base, base)
        exponent >>= 1
    return result


def _build_sbox() -> Tuple[List[int], List[int]]:
    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        x = _gf_inv(value)
        # Affine transform: bitwise rotations of x XORed together plus 0x63.
        y = x
        for shift in (1, 2, 3, 4):
            y ^= ((x << shift) | (x >> (8 - shift))) & 0xFF
        y ^= 0x63
        sbox[value] = y
        inv_sbox[y] = value
    return sbox, inv_sbox


_SBOX, _INV_SBOX = _build_sbox()
assert _SBOX[0x00] == 0x63 and _SBOX[0x53] == 0xED, "AES S-box self-check failed"

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_gf_mul(_RCON[-1], 0x02))


def _build_tables() -> Tuple[List[int], List[int], List[int], List[int]]:
    """Build the four encryption T-tables (S-box + MixColumns combined)."""
    t0, t1, t2, t3 = [], [], [], []
    for value in range(256):
        s = _SBOX[value]
        s2 = _gf_mul(s, 2)
        s3 = _gf_mul(s, 3)
        word = (s2 << 24) | (s << 16) | (s << 8) | s3
        t0.append(word)
        t1.append(((word >> 8) | (word << 24)) & 0xFFFFFFFF)
        t2.append(((word >> 16) | (word << 16)) & 0xFFFFFFFF)
        t3.append(((word >> 24) | (word << 8)) & 0xFFFFFFFF)
    return t0, t1, t2, t3


_T0, _T1, _T2, _T3 = _build_tables()


def _build_inverse_tables() -> Tuple[List[int], List[int], List[int], List[int]]:
    """Build the four decryption T-tables (InvS-box + InvMixColumns)."""
    d0, d1, d2, d3 = [], [], [], []
    for value in range(256):
        s = _INV_SBOX[value]
        s9 = _gf_mul(s, 9)
        sb = _gf_mul(s, 11)
        sd = _gf_mul(s, 13)
        se = _gf_mul(s, 14)
        word = (se << 24) | (s9 << 16) | (sd << 8) | sb
        d0.append(word)
        d1.append(((word >> 8) | (word << 24)) & 0xFFFFFFFF)
        d2.append(((word >> 16) | (word << 16)) & 0xFFFFFFFF)
        d3.append(((word >> 24) | (word << 8)) & 0xFFFFFFFF)
    return d0, d1, d2, d3


_D0, _D1, _D2, _D3 = _build_inverse_tables()


class AES:
    """AES block cipher with a 128, 192 or 256 bit key.

    >>> cipher = AES(bytes(16))
    >>> cipher.encrypt_block(bytes(16)).hex()
    '66e94bd4ef8a2c3b884cfa59ca342b2e'
    """

    block_size = 16

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError(f"invalid AES key length: {len(key)}")
        self._key = key
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        # Key schedules are memoised per key value: QUIC re-derives the
        # same Initial keys for every probe of a scan (the DCID-keyed
        # secrets repeat), and both GCM and header protection construct
        # fresh AES objects around recurring keys.
        self._round_keys = _expand_key_cached(key)
        # The inverse schedule is only needed by decrypt_block(); built
        # on first use since CTR mode and header protection never do.
        self._dec_round_keys: Optional[Tuple[int, ...]] = None

    @staticmethod
    def _expand_key(key: bytes) -> List[int]:
        nk = len(key) // 4
        rounds = {4: 10, 6: 12, 8: 14}[nk]
        words = [int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(nk)]
        for i in range(nk, 4 * (rounds + 1)):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
                temp = (
                    (_SBOX[(temp >> 24) & 0xFF] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (_SBOX[(temp >> 24) & 0xFF] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return words

    def _expand_decryption_key(self) -> Tuple[int, ...]:
        """Round keys for the equivalent inverse cipher (InvMixColumns applied)."""
        return _expand_decryption_key_cached(self._key)

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES operates on 16-byte blocks")
        rk = self._round_keys
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        for rnd in range(1, self._rounds):
            k = 4 * rnd
            u0 = (
                t0[(s0 >> 24) & 0xFF]
                ^ t1[(s1 >> 16) & 0xFF]
                ^ t2[(s2 >> 8) & 0xFF]
                ^ t3[s3 & 0xFF]
                ^ rk[k]
            )
            u1 = (
                t0[(s1 >> 24) & 0xFF]
                ^ t1[(s2 >> 16) & 0xFF]
                ^ t2[(s3 >> 8) & 0xFF]
                ^ t3[s0 & 0xFF]
                ^ rk[k + 1]
            )
            u2 = (
                t0[(s2 >> 24) & 0xFF]
                ^ t1[(s3 >> 16) & 0xFF]
                ^ t2[(s0 >> 8) & 0xFF]
                ^ t3[s1 & 0xFF]
                ^ rk[k + 2]
            )
            u3 = (
                t0[(s3 >> 24) & 0xFF]
                ^ t1[(s0 >> 16) & 0xFF]
                ^ t2[(s1 >> 8) & 0xFF]
                ^ t3[s2 & 0xFF]
                ^ rk[k + 3]
            )
            s0, s1, s2, s3 = u0, u1, u2, u3
        k = 4 * self._rounds
        sbox = _SBOX
        out0 = (
            (sbox[(s0 >> 24) & 0xFF] << 24)
            | (sbox[(s1 >> 16) & 0xFF] << 16)
            | (sbox[(s2 >> 8) & 0xFF] << 8)
            | sbox[s3 & 0xFF]
        ) ^ rk[k]
        out1 = (
            (sbox[(s1 >> 24) & 0xFF] << 24)
            | (sbox[(s2 >> 16) & 0xFF] << 16)
            | (sbox[(s3 >> 8) & 0xFF] << 8)
            | sbox[s0 & 0xFF]
        ) ^ rk[k + 1]
        out2 = (
            (sbox[(s2 >> 24) & 0xFF] << 24)
            | (sbox[(s3 >> 16) & 0xFF] << 16)
            | (sbox[(s0 >> 8) & 0xFF] << 8)
            | sbox[s1 & 0xFF]
        ) ^ rk[k + 2]
        out3 = (
            (sbox[(s3 >> 24) & 0xFF] << 24)
            | (sbox[(s0 >> 16) & 0xFF] << 16)
            | (sbox[(s1 >> 8) & 0xFF] << 8)
            | sbox[s2 & 0xFF]
        ) ^ rk[k + 3]
        return b"".join(x.to_bytes(4, "big") for x in (out0, out1, out2, out3))

    def encrypt_blocks(self, data: bytes) -> bytes:
        """ECB-encrypt a whole multiple of 16 bytes in one call.

        Batching keeps the tables and round keys in locals across
        blocks and assembles one output buffer, which is measurably
        cheaper than per-block ``encrypt_block`` calls on the CTR-mode
        and packet-protection hot paths.
        """
        if len(data) % 16:
            raise ValueError("AES batch length must be a multiple of 16 bytes")
        rk = self._round_keys
        rounds = self._rounds
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        sbox = _SBOX
        rk0, rk1, rk2, rk3 = rk[0], rk[1], rk[2], rk[3]
        klast = 4 * rounds
        out = bytearray(len(data))
        for offset in range(0, len(data), 16):
            s0 = int.from_bytes(data[offset : offset + 4], "big") ^ rk0
            s1 = int.from_bytes(data[offset + 4 : offset + 8], "big") ^ rk1
            s2 = int.from_bytes(data[offset + 8 : offset + 12], "big") ^ rk2
            s3 = int.from_bytes(data[offset + 12 : offset + 16], "big") ^ rk3
            for rnd in range(1, rounds):
                k = 4 * rnd
                u0 = (
                    t0[(s0 >> 24) & 0xFF]
                    ^ t1[(s1 >> 16) & 0xFF]
                    ^ t2[(s2 >> 8) & 0xFF]
                    ^ t3[s3 & 0xFF]
                    ^ rk[k]
                )
                u1 = (
                    t0[(s1 >> 24) & 0xFF]
                    ^ t1[(s2 >> 16) & 0xFF]
                    ^ t2[(s3 >> 8) & 0xFF]
                    ^ t3[s0 & 0xFF]
                    ^ rk[k + 1]
                )
                u2 = (
                    t0[(s2 >> 24) & 0xFF]
                    ^ t1[(s3 >> 16) & 0xFF]
                    ^ t2[(s0 >> 8) & 0xFF]
                    ^ t3[s1 & 0xFF]
                    ^ rk[k + 2]
                )
                u3 = (
                    t0[(s3 >> 24) & 0xFF]
                    ^ t1[(s0 >> 16) & 0xFF]
                    ^ t2[(s1 >> 8) & 0xFF]
                    ^ t3[s2 & 0xFF]
                    ^ rk[k + 3]
                )
                s0, s1, s2, s3 = u0, u1, u2, u3
            out0 = (
                (sbox[(s0 >> 24) & 0xFF] << 24)
                | (sbox[(s1 >> 16) & 0xFF] << 16)
                | (sbox[(s2 >> 8) & 0xFF] << 8)
                | sbox[s3 & 0xFF]
            ) ^ rk[klast]
            out1 = (
                (sbox[(s1 >> 24) & 0xFF] << 24)
                | (sbox[(s2 >> 16) & 0xFF] << 16)
                | (sbox[(s3 >> 8) & 0xFF] << 8)
                | sbox[s0 & 0xFF]
            ) ^ rk[klast + 1]
            out2 = (
                (sbox[(s2 >> 24) & 0xFF] << 24)
                | (sbox[(s3 >> 16) & 0xFF] << 16)
                | (sbox[(s0 >> 8) & 0xFF] << 8)
                | sbox[s1 & 0xFF]
            ) ^ rk[klast + 2]
            out3 = (
                (sbox[(s3 >> 24) & 0xFF] << 24)
                | (sbox[(s0 >> 16) & 0xFF] << 16)
                | (sbox[(s1 >> 8) & 0xFF] << 8)
                | sbox[s2 & 0xFF]
            ) ^ rk[klast + 3]
            out[offset : offset + 16] = (
                (out0 << 96) | (out1 << 64) | (out2 << 32) | out3
            ).to_bytes(16, "big")
        return bytes(out)

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES operates on 16-byte blocks")
        rk = self._dec_round_keys
        if rk is None:
            rk = self._dec_round_keys = self._expand_decryption_key()
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
        d0, d1, d2, d3 = _D0, _D1, _D2, _D3
        for rnd in range(1, self._rounds):
            k = 4 * rnd
            u0 = (
                d0[(s0 >> 24) & 0xFF]
                ^ d1[(s3 >> 16) & 0xFF]
                ^ d2[(s2 >> 8) & 0xFF]
                ^ d3[s1 & 0xFF]
                ^ rk[k]
            )
            u1 = (
                d0[(s1 >> 24) & 0xFF]
                ^ d1[(s0 >> 16) & 0xFF]
                ^ d2[(s3 >> 8) & 0xFF]
                ^ d3[s2 & 0xFF]
                ^ rk[k + 1]
            )
            u2 = (
                d0[(s2 >> 24) & 0xFF]
                ^ d1[(s1 >> 16) & 0xFF]
                ^ d2[(s0 >> 8) & 0xFF]
                ^ d3[s3 & 0xFF]
                ^ rk[k + 2]
            )
            u3 = (
                d0[(s3 >> 24) & 0xFF]
                ^ d1[(s2 >> 16) & 0xFF]
                ^ d2[(s1 >> 8) & 0xFF]
                ^ d3[s0 & 0xFF]
                ^ rk[k + 3]
            )
            s0, s1, s2, s3 = u0, u1, u2, u3
        k = 4 * self._rounds
        inv = _INV_SBOX
        out0 = (
            (inv[(s0 >> 24) & 0xFF] << 24)
            | (inv[(s3 >> 16) & 0xFF] << 16)
            | (inv[(s2 >> 8) & 0xFF] << 8)
            | inv[s1 & 0xFF]
        ) ^ rk[k]
        out1 = (
            (inv[(s1 >> 24) & 0xFF] << 24)
            | (inv[(s0 >> 16) & 0xFF] << 16)
            | (inv[(s3 >> 8) & 0xFF] << 8)
            | inv[s2 & 0xFF]
        ) ^ rk[k + 1]
        out2 = (
            (inv[(s2 >> 24) & 0xFF] << 24)
            | (inv[(s1 >> 16) & 0xFF] << 16)
            | (inv[(s0 >> 8) & 0xFF] << 8)
            | inv[s3 & 0xFF]
        ) ^ rk[k + 2]
        out3 = (
            (inv[(s3 >> 24) & 0xFF] << 24)
            | (inv[(s2 >> 16) & 0xFF] << 16)
            | (inv[(s1 >> 8) & 0xFF] << 8)
            | inv[s0 & 0xFF]
        ) ^ rk[k + 3]
        return b"".join(x.to_bytes(4, "big") for x in (out0, out1, out2, out3))


@lru_cache(maxsize=4096)
def _expand_key_cached(key: bytes) -> Tuple[int, ...]:
    return tuple(AES._expand_key(key))


@lru_cache(maxsize=1024)
def _expand_decryption_key_cached(key: bytes) -> Tuple[int, ...]:
    rk = _expand_key_cached(key)
    rounds = {44: 10, 52: 12, 60: 14}[len(rk)]
    dec: List[int] = [0] * len(rk)
    for i in range(4):
        dec[i] = rk[4 * rounds + i]
        dec[4 * rounds + i] = rk[i]
    for rnd in range(1, rounds):
        for i in range(4):
            word = rk[4 * (rounds - rnd) + i]
            # Apply InvMixColumns to the word via the decryption tables
            # composed with the forward S-box.
            dec[4 * rnd + i] = (
                _D0[_SBOX[(word >> 24) & 0xFF]]
                ^ _D1[_SBOX[(word >> 16) & 0xFF]]
                ^ _D2[_SBOX[(word >> 8) & 0xFF]]
                ^ _D3[_SBOX[word & 0xFF]]
            )
    return tuple(dec)
