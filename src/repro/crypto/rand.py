"""Deterministic randomness for reproducible measurement campaigns.

Every stochastic decision in the simulator and the scanners draws from
a :class:`DeterministicRandom` derived from a campaign seed, so a whole
weekly scan campaign replays bit-identically.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

__all__ = ["DeterministicRandom", "derive_seed"]


def derive_seed(*parts: Union[str, int, bytes]) -> int:
    """Derive a child seed from labelled parts (domain separation)."""
    hasher = hashlib.sha256()
    for part in parts:
        if isinstance(part, str):
            encoded = part.encode()
        elif isinstance(part, int):
            encoded = str(part).encode()
        else:
            encoded = part
        hasher.update(len(encoded).to_bytes(4, "big"))
        hasher.update(encoded)
    return int.from_bytes(hasher.digest()[:8], "big")


class DeterministicRandom(random.Random):
    """A :class:`random.Random` with labelled child-generator support."""

    def __init__(self, seed: Union[str, int, bytes, tuple] = 0):
        if isinstance(seed, tuple):
            seed = derive_seed(*seed)
        elif not isinstance(seed, int):
            seed = derive_seed(seed)
        super().__init__(seed)
        self._seed_value = seed

    def child(self, *labels: Union[str, int, bytes]) -> "DeterministicRandom":
        """Create an independent child generator for a labelled purpose."""
        return DeterministicRandom(derive_seed(self._seed_value, *labels))

    def token(self, length: int) -> bytes:
        """Random bytes (e.g. connection IDs, key material)."""
        return self.getrandbits(length * 8).to_bytes(length, "big")
