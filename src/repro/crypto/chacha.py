"""ChaCha20 and Poly1305 (RFC 8439), from scratch.

TLS 1.3 mandates support for ``TLS_CHACHA20_POLY1305_SHA256`` as a
SHOULD; QUIC implementations commonly offer it alongside the AES-GCM
suites, so the repository's TLS stack exposes it as a third real
cipher suite.  Validated against the RFC 8439 test vectors.
"""

from __future__ import annotations

from typing import List

__all__ = ["chacha20_block", "chacha20_xor", "poly1305_mac", "ChaCha20Poly1305"]

_MASK32 = 0xFFFFFFFF


def _rotl32(value: int, count: int) -> int:
    return ((value << count) | (value >> (32 - count))) & _MASK32


def _quarter_round(state: List[int], a: int, b: int, c: int, d: int) -> None:
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 16)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 12)
    state[a] = (state[a] + state[b]) & _MASK32
    state[d] = _rotl32(state[d] ^ state[a], 8)
    state[c] = (state[c] + state[d]) & _MASK32
    state[b] = _rotl32(state[b] ^ state[c], 7)


_CONSTANTS = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)  # "expand 32-byte k"


def chacha20_block(key: bytes, counter: int, nonce: bytes) -> bytes:
    """One 64-byte ChaCha20 keystream block (RFC 8439 §2.3)."""
    if len(key) != 32:
        raise ValueError("ChaCha20 key must be 32 bytes")
    if len(nonce) != 12:
        raise ValueError("ChaCha20 nonce must be 12 bytes")
    state = list(_CONSTANTS)
    state += [int.from_bytes(key[i : i + 4], "little") for i in range(0, 32, 4)]
    state.append(counter & _MASK32)
    state += [int.from_bytes(nonce[i : i + 4], "little") for i in range(0, 12, 4)]
    working = state[:]
    for _ in range(10):
        _quarter_round(working, 0, 4, 8, 12)
        _quarter_round(working, 1, 5, 9, 13)
        _quarter_round(working, 2, 6, 10, 14)
        _quarter_round(working, 3, 7, 11, 15)
        _quarter_round(working, 0, 5, 10, 15)
        _quarter_round(working, 1, 6, 11, 12)
        _quarter_round(working, 2, 7, 8, 13)
        _quarter_round(working, 3, 4, 9, 14)
    output = bytearray()
    for original, mixed in zip(state, working):
        output += ((original + mixed) & _MASK32).to_bytes(4, "little")
    return bytes(output)


def chacha20_xor(key: bytes, counter: int, nonce: bytes, data: bytes) -> bytes:
    """Encrypt/decrypt by XOR with the ChaCha20 keystream."""
    output = bytearray()
    for block_index in range((len(data) + 63) // 64):
        keystream = chacha20_block(key, counter + block_index, nonce)
        chunk = data[block_index * 64 : block_index * 64 + 64]
        output += bytes(a ^ b for a, b in zip(chunk, keystream))
    return bytes(output)


_P1305 = (1 << 130) - 5


def poly1305_mac(key: bytes, message: bytes) -> bytes:
    """Poly1305 one-time authenticator (RFC 8439 §2.5)."""
    if len(key) != 32:
        raise ValueError("Poly1305 key must be 32 bytes")
    r = int.from_bytes(key[:16], "little") & 0x0FFFFFFC0FFFFFFC0FFFFFFC0FFFFFFF
    s = int.from_bytes(key[16:], "little")
    accumulator = 0
    for offset in range(0, len(message), 16):
        chunk = message[offset : offset + 16]
        block = int.from_bytes(chunk + b"\x01", "little")
        accumulator = ((accumulator + block) * r) % _P1305
    return ((accumulator + s) & ((1 << 128) - 1)).to_bytes(16, "little")


def _pad16(data: bytes) -> bytes:
    remainder = len(data) % 16
    return data + bytes(16 - remainder) if remainder else data


class ChaCha20Poly1305:
    """The ChaCha20-Poly1305 AEAD (RFC 8439 §2.8)."""

    tag_length = 16

    def __init__(self, key: bytes):
        if len(key) != 32:
            raise ValueError("ChaCha20-Poly1305 key must be 32 bytes")
        self._key = key

    def _tag(self, nonce: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        otk = chacha20_block(self._key, 0, nonce)[:32]
        mac_data = (
            _pad16(aad)
            + _pad16(ciphertext)
            + len(aad).to_bytes(8, "little")
            + len(ciphertext).to_bytes(8, "little")
        )
        return poly1305_mac(otk, mac_data)

    def seal(self, nonce: bytes, plaintext: bytes, aad: bytes) -> bytes:
        ciphertext = chacha20_xor(self._key, 1, nonce, plaintext)
        return ciphertext + self._tag(nonce, aad, ciphertext)

    def open(self, nonce: bytes, data: bytes, aad: bytes) -> bytes:
        from repro.crypto.aead import AeadError

        if len(data) < self.tag_length:
            raise AeadError("ciphertext shorter than tag")
        ciphertext, tag = data[: -self.tag_length], data[-self.tag_length :]
        expected = self._tag(nonce, aad, ciphertext)
        import hmac as _hmac

        if not _hmac.compare_digest(tag, expected):
            raise AeadError("ChaCha20-Poly1305 tag mismatch")
        return chacha20_xor(self._key, 1, nonce, ciphertext)
