"""Cryptographic primitives implemented from scratch.

The QUIC and TLS stacks in this repository depend only on the Python
standard library.  Everything that is not in ``hashlib``/``hmac`` is
implemented here:

- :mod:`repro.crypto.aes` — the AES block cipher (128/192/256 bit keys),
- :mod:`repro.crypto.gcm` — GHASH and AES-GCM authenticated encryption,
- :mod:`repro.crypto.hkdf` — HKDF (RFC 5869) and the TLS 1.3
  ``HKDF-Expand-Label`` construction (RFC 8446),
- :mod:`repro.crypto.x25519` — the X25519 Diffie-Hellman function
  (RFC 7748),
- :mod:`repro.crypto.rsa` — RSA key generation and PKCS#1 v1.5
  signatures used by the simulated certificate authority,
- :mod:`repro.crypto.aead` — the pluggable AEAD interface used by the
  QUIC/TLS record protection (real AES-GCM plus a documented fast
  simulation mode for campaign-scale scans),
- :mod:`repro.crypto.rand` — a deterministic DRBG so whole measurement
  campaigns are reproducible from a single seed.
"""

from repro.crypto.aead import AeadAes128Gcm, AeadSim, aead_for_suite
from repro.crypto.aes import AES
from repro.crypto.gcm import AesGcm
from repro.crypto.hkdf import hkdf_expand, hkdf_expand_label, hkdf_extract
from repro.crypto.rand import DeterministicRandom
from repro.crypto.x25519 import x25519, x25519_base

__all__ = [
    "AES",
    "AesGcm",
    "AeadAes128Gcm",
    "AeadSim",
    "aead_for_suite",
    "DeterministicRandom",
    "hkdf_extract",
    "hkdf_expand",
    "hkdf_expand_label",
    "x25519",
    "x25519_base",
]
