"""Minimal RSA with PKCS#1 v1.5 signatures, for the simulated PKI.

The simulated certificate authority (:mod:`repro.tls.certificates`)
signs leaf certificates with RSA.  Key sizes default to 1024 bits —
small enough that pure-Python key generation stays fast at
campaign scale, while exercising exactly the sign/verify code paths a
real scanner validates.  Sizes are configurable for tests.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Tuple

from repro.crypto.primes import generate_prime

__all__ = ["RsaPublicKey", "RsaPrivateKey", "generate_rsa_key", "SignatureError"]

# DigestInfo prefix for SHA-256 (RFC 8017 §9.2 note 1).
_SHA256_DIGEST_INFO = bytes.fromhex("3031300d060960864801650304020105000420")


class SignatureError(Exception):
    """Raised when an RSA signature fails verification."""


@dataclass(frozen=True)
class RsaPublicKey:
    n: int
    e: int

    @property
    def size_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def verify(self, message: bytes, signature: bytes) -> None:
        """Verify a PKCS#1 v1.5 SHA-256 signature; raise on failure."""
        if len(signature) != self.size_bytes:
            raise SignatureError("signature length mismatch")
        s = int.from_bytes(signature, "big")
        if s >= self.n:
            raise SignatureError("signature out of range")
        em = pow(s, self.e, self.n).to_bytes(self.size_bytes, "big")
        expected = _pkcs1_v15_encode(message, self.size_bytes)
        if em != expected:
            raise SignatureError("signature mismatch")


@dataclass(frozen=True)
class RsaPrivateKey:
    n: int
    e: int
    d: int
    # Prime factors, when known (freshly generated keys carry them;
    # keys reconstructed from (n, e, d) alone may not).  They enable
    # the ~4x faster CRT signing path below; signatures are identical.
    p: Optional[int] = None
    q: Optional[int] = None

    @property
    def public_key(self) -> RsaPublicKey:
        return RsaPublicKey(self.n, self.e)

    @property
    def size_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    @cached_property
    def _crt(self) -> Optional[Tuple[int, int, int, int, int]]:
        """(p, q, d mod p-1, d mod q-1, q^-1 mod p) or None."""
        if self.p is None or self.q is None:
            return None
        return (
            self.p,
            self.q,
            self.d % (self.p - 1),
            self.d % (self.q - 1),
            pow(self.q, -1, self.p),
        )

    def sign(self, message: bytes) -> bytes:
        em = _pkcs1_v15_encode(message, self.size_bytes)
        m = int.from_bytes(em, "big")
        crt = self._crt
        if crt is None:
            s = pow(m, self.d, self.n)
        else:
            # Chinese Remainder Theorem (RFC 8017 §5.1.2): two
            # half-size exponentiations instead of one full-size one.
            p, q, dp, dq, qinv = crt
            m1 = pow(m % p, dp, p)
            m2 = pow(m % q, dq, q)
            s = m2 + q * ((qinv * (m1 - m2)) % p)
        return s.to_bytes(self.size_bytes, "big")


def _pkcs1_v15_encode(message: bytes, em_len: int) -> bytes:
    digest = hashlib.sha256(message).digest()
    t = _SHA256_DIGEST_INFO + digest
    if em_len < len(t) + 11:
        raise ValueError("RSA modulus too small for PKCS#1 v1.5 SHA-256")
    padding = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + padding + b"\x00" + t


def generate_rsa_key(
    bits: int = 1024, rng: Optional[random.Random] = None, e: int = 65537
) -> RsaPrivateKey:
    """Generate an RSA key pair with an exactly ``bits``-bit modulus."""
    rng = rng or random.Random()
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = pow(e, -1, phi)
        except ValueError:
            continue
        return RsaPrivateKey(n=n, e=e, d=d, p=p, q=q)
