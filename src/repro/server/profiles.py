"""Implementation profiles: how each deployment family behaves.

A profile captures *implementation*-level behaviour the paper can
observe from outside:

- the wording of the TLS alert reason (the paper notes the 0x128
  message text differs between Cloudflare's and Google's libraries),
- the HTTP ``Server`` header value (Table 6),
- SNI policy: whether missing SNI yields alert 0x28, a default
  certificate or (Google on TCP only) a self-signed error certificate,
- whether the implementation answers the forced version negotiation
  (deployments that do not are invisible to the ZMap module, §4),
- whether Initial packets without padding are accepted (§3.1).

Provider *deployment* facts (addresses, ASes, domains, version
timelines, transport parameter values) live in
:mod:`repro.internet.providers`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["ImplementationProfile", "PROFILES"]


@dataclass(frozen=True)
class ImplementationProfile:
    name: str
    server_header: Optional[str]
    alert_reason: str = "handshake failure"
    # "require": alert 0x28 without SNI (QUIC error 0x128)
    # "default": serve the default certificate
    sni_policy_quic: str = "default"
    sni_policy_tcp: str = "default"
    # Google on TCP serves a self-signed CN=error certificate when SNI
    # is missing, while QUIC serves the valid default one (§5.1).
    tcp_no_sni_self_signed: bool = False
    echo_sni_quic: bool = True
    echo_sni_tcp: bool = True
    respond_to_forced_negotiation: bool = True
    respond_without_padding: bool = False
    # Without SNI, the TCP error vhost negotiates no ALPN while QUIC
    # still does — the Google-rooted extensions mismatch of Table 5.
    tcp_no_sni_drops_alpn: bool = False
    # Session resumption / 0-RTT support (extension experiment E1).
    supports_resumption: bool = False
    supports_early_data: bool = False


PROFILES: Dict[str, ImplementationProfile] = {
    "quiche": ImplementationProfile(
        name="quiche",
        server_header="cloudflare",
        alert_reason="handshake failed: tls handshake failure",
        sni_policy_quic="require",
        sni_policy_tcp="require",
        supports_resumption=True,
        supports_early_data=True,
    ),
    "google-quic": ImplementationProfile(
        name="google-quic",
        server_header="gws",
        alert_reason="TLS handshake failure (ENCRYPTION_HANDSHAKE) 40: handshake failure",
        sni_policy_quic="default",
        tcp_no_sni_self_signed=True,
        tcp_no_sni_drops_alpn=True,
        supports_resumption=True,
        supports_early_data=True,
    ),
    "gvs": ImplementationProfile(
        name="gvs",
        server_header="gvs 1.0",
        alert_reason="TLS handshake failure (ENCRYPTION_HANDSHAKE) 40: handshake failure",
        sni_policy_quic="default",
        tcp_no_sni_self_signed=True,
        tcp_no_sni_drops_alpn=True,
        supports_resumption=True,
        supports_early_data=True,
    ),
    # Akamai/Fastly parked addresses behave as middleboxes: they answer
    # the version negotiation but never complete handshakes; their
    # active pools use these profiles.
    "akamai-quic": ImplementationProfile(
        name="akamai-quic",
        server_header="AkamaiGHost",
        sni_policy_quic="default",
        sni_policy_tcp="default",
        tcp_no_sni_self_signed=True,
        supports_resumption=True,
    ),
    "fastly-quic": ImplementationProfile(
        name="fastly-quic",
        server_header="Fastly",
        sni_policy_quic="require",
        sni_policy_tcp="default",
        respond_without_padding=True,  # the single-AS §3.1 artefact
    ),
    "proxygen": ImplementationProfile(
        name="proxygen",
        server_header="proxygen-bolt",
        alert_reason="mvfst: handshake alert",
        sni_policy_quic="default",
        tcp_no_sni_self_signed=True,
        supports_resumption=True,
        supports_early_data=True,
    ),
    "lsquic": ImplementationProfile(
        name="lsquic",
        server_header="LiteSpeed",
        alert_reason="lsquic: TLS alert 40",
        sni_policy_quic="default",
        supports_resumption=True,
    ),
    "nginx-quic": ImplementationProfile(
        name="nginx-quic",
        server_header="nginx",
        alert_reason="SSL_do_handshake() failed",
        sni_policy_quic="default",
    ),
    "yunjiasu": ImplementationProfile(
        name="yunjiasu",
        server_header="yunjiasu-nginx",
        alert_reason="SSL_do_handshake() failed",
        sni_policy_quic="default",
    ),
    "caddy": ImplementationProfile(
        name="caddy",
        server_header="Caddy",
        sni_policy_quic="default",
        supports_resumption=True,
    ),
    "h2o": ImplementationProfile(
        name="h2o",
        server_header="h2o/2.3.0-DEV@8c78575c9",
        sni_policy_quic="default",
        supports_resumption=True,
        supports_early_data=True,
    ),
    "aioquic-ish": ImplementationProfile(
        name="aioquic-ish",
        server_header="Python/3.7 aiohttp/3.7.2",
        sni_policy_quic="default",
        supports_resumption=True,
        supports_early_data=True,
    ),
    # LiteSpeed-based mass hosting that does not answer the forced
    # version negotiation (unique to Alt-Svc discovery, §4 overlap).
    "lsquic-hosting": ImplementationProfile(
        name="lsquic-hosting",
        server_header="LiteSpeed",
        alert_reason="lsquic: TLS alert 40",
        sni_policy_quic="require",
        respond_to_forced_negotiation=False,
        supports_resumption=True,
    ),
}
