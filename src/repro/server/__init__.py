"""Simulated server deployments.

- :mod:`repro.server.tcp443` — TLS-over-TCP servers with HTTP/1.1
  responses carrying ``Alt-Svc`` and ``Server`` headers,
- :mod:`repro.server.profiles` — per-implementation behaviour profiles
  (Cloudflare/quiche, Google, Akamai, Fastly, Facebook proxygen/mvfst,
  LiteSpeed/LSQUIC, nginx, Caddy, h2o, …) encoding the quirks the paper
  observes, and the HTTP/3 application handler glue.
"""

from repro.server.tcp443 import Tcp443Config, Tcp443Server

__all__ = ["Tcp443Config", "Tcp443Server"]
