"""TLS-over-TCP servers on port 443.

These are the peers of the Goscanner-style stateful TLS scans (§3.3):
after a TLS 1.3 handshake over the record layer they answer an HTTP/1.1
request whose response headers include ``Server`` and — for QUIC
deployments — ``Alt-Svc``.

Quirks supported (all observed by the paper):

- SNI-dependent certificate selection, including Google's self-signed
  "missing SNI" error certificate on TCP only,
- deployments with TLS 1.3 disabled on TCP while QUIC is enabled
  (possible with Cloudflare, §5.1): modelled as a legacy TLS 1.2
  ServerHello (no ``supported_versions``) followed by a plaintext
  certificate, after which the scanner records the version and aborts,
- servers that do not echo the SNI extension acknowledgement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.crypto.rand import DeterministicRandom
from repro.http.h1 import HttpParseError, HttpRequest, HttpResponse
from repro.netsim.topology import TcpListener, TcpSession
from repro.tls.alerts import AlertDescription, AlertError
from repro.tls.engine import TlsServerConfig, TlsServerSession
from repro.tls.messages import (
    CertificateMessage,
    HandshakeType,
    ServerHello,
    iter_messages,
)
from repro.tls.record import ContentType, RecordLayer, RecordProtection, encode_alert

__all__ = ["Tcp443Config", "Tcp443Server", "LEGACY_TLS12_CIPHER"]

# TLS_RSA_WITH_AES_128_GCM_SHA256 — a typical TLS 1.2 suite id.
LEGACY_TLS12_CIPHER = 0x009C


@dataclass
class Tcp443Config:
    tls: TlsServerConfig = field(default_factory=TlsServerConfig)
    # (request, sni) -> response; supplies Server/Alt-Svc headers.
    http_handler: Optional[Callable[[HttpRequest, Optional[str]], HttpResponse]] = None
    tls13_enabled: bool = True
    seed: object = "tcp443"


class Tcp443Server(TcpListener):
    """A TLS 1.3 (or legacy) HTTPS server bound to one address."""

    def __init__(self, config: Tcp443Config):
        self._config = config
        self._rng = DeterministicRandom(config.seed)
        self._counter = 0

    # -- TcpListener interface ------------------------------------------------
    def session_opened(self, session: TcpSession) -> None:
        self._counter += 1
        session.context["tls"] = None
        session.context["records"] = RecordLayer()
        session.context["rng"] = self._rng.child(self._counter)

    def session_closed(self, session: TcpSession) -> None:
        session.context.clear()

    def data_received(self, session: TcpSession, data: bytes) -> None:
        records: RecordLayer = session.context["records"]
        try:
            for content_type, payload in records.unwrap(data):
                if content_type == ContentType.HANDSHAKE:
                    self._handle_handshake(session, payload)
                elif content_type == ContentType.APPLICATION_DATA:
                    self._handle_http(session, payload)
        except AlertError as alert:
            if not alert.remote:
                session.reply(records.wrap_alert(alert.description))
            session.server_close()

    # -- handshake ---------------------------------------------------------------
    def _handle_handshake(self, session: TcpSession, payload: bytes) -> None:
        records: RecordLayer = session.context["records"]
        tls: Optional[TlsServerSession] = session.context["tls"]
        if tls is None:
            tls = TlsServerSession(self._config.tls, session.context["rng"])
            session.context["tls"] = tls
            if not self._config.tls13_enabled:
                self._legacy_tls12_flight(session, tls, payload)
                return
            flight = tls.process_client_hello(payload)
            session.reply(records.wrap_handshake(flight.server_hello))
            assert tls.suite is not None and tls.handshake_secrets is not None
            records.send_protection = RecordProtection(
                tls.suite, tls.handshake_secrets.server
            )
            session.reply(records.wrap_handshake(flight.encrypted_flight))
            records.recv_protection = RecordProtection(
                tls.suite, tls.handshake_secrets.client
            )
        else:
            tls.process_client_finished(payload)
            assert tls.suite is not None and tls.application_secrets is not None
            records.send_protection = RecordProtection(
                tls.suite, tls.application_secrets.server
            )
            records.recv_protection = RecordProtection(
                tls.suite, tls.application_secrets.client
            )

    def _legacy_tls12_flight(
        self, session: TcpSession, tls: TlsServerSession, client_hello: bytes
    ) -> None:
        """A TLS 1.2 first flight: ServerHello without supported_versions
        plus a plaintext Certificate.  The scanner records the version
        and certificate, then closes — sufficient for every analysis the
        paper performs on such targets."""
        records: RecordLayer = session.context["records"]
        messages = list(iter_messages(client_hello))
        if not messages or messages[0][0] != HandshakeType.CLIENT_HELLO:
            raise AlertError(AlertDescription.UNEXPECTED_MESSAGE, "expected ClientHello")
        from repro.tls.messages import ClientHello

        hello = ClientHello.decode(messages[0][1])
        from repro.tls.extensions import ExtensionType, decode_sni

        sni_data = hello.extension(ExtensionType.SERVER_NAME)
        sni = decode_sni(sni_data) if sni_data else None
        if self._config.tls.select_certificate is None:
            raise AlertError(AlertDescription.INTERNAL_ERROR, "no certificate configured")
        chain, _key = self._config.tls.select_certificate(sni)
        server_hello = ServerHello(
            random=session.context["rng"].token(32),
            cipher_suite=LEGACY_TLS12_CIPHER,
            extensions=[],  # no supported_versions => TLS 1.2
            legacy_session_id=hello.legacy_session_id,
        ).encode()
        cert_msg = CertificateMessage(chain=list(chain)).encode()
        session.reply(records.wrap_handshake(server_hello))
        session.reply(records.wrap_handshake(cert_msg))

    # -- HTTP ------------------------------------------------------------------
    def _handle_http(self, session: TcpSession, payload: bytes) -> None:
        records: RecordLayer = session.context["records"]
        tls: Optional[TlsServerSession] = session.context["tls"]
        try:
            request = HttpRequest.decode(payload)
        except HttpParseError:
            session.reply(records.wrap_alert(AlertDescription.UNEXPECTED_MESSAGE))
            session.server_close()
            return
        sni = tls.client_sni if tls is not None else None
        if self._config.http_handler is not None:
            response = self._config.http_handler(request, sni)
        else:
            response = HttpResponse(status=404, reason="Not Found")
        if response.header("content-length") is None:
            response.headers.append(("Content-Length", str(len(response.body))))
        session.reply(records.wrap_application_data(response.encode()))
