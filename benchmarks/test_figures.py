"""Benchmarks F3-F9: regenerate every figure of the paper's evaluation."""

import pytest

from benchmarks.conftest import emit
from repro.experiments.figures import (
    DEFAULT_TLS_WEEKS,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
)
from repro.internet.timeline import SCAN_WEEKS_ZMAP


@pytest.mark.benchmark(group="figures")
def test_fig3(benchmark, campaign, output_dir):
    result = benchmark.pedantic(fig3, args=(campaign,), rounds=1, iterations=1)
    emit(output_dir, result)
    by_week_list = {(row[0], row[1]): row[4] for row in result.rows}
    weeks = sorted({row[0] for row in result.rows})
    # Success rate grows over the period for every list (Fig. 3).
    for list_name in ("comnetorg", "alexa", "czds"):
        assert by_week_list[(weeks[-1], list_name)] >= by_week_list[(weeks[0], list_name)]
    # Toplists succeed far more often than zone files; com/net/org ~1 %.
    final = weeks[-1]
    assert by_week_list[(final, "alexa")] > 3 * by_week_list[(final, "comnetorg")]
    assert 0.3 < by_week_list[(final, "comnetorg")] < 4.0


@pytest.mark.benchmark(group="figures")
def test_fig4(benchmark, campaign, output_dir):
    campaign.zmap_v4, campaign.altsvc_discovered_v4  # warm scans
    result = benchmark.pedantic(fig4, args=(campaign,), rounds=1, iterations=1)
    emit(output_dir, result)
    rows = {row[0]: row for row in result.rows}
    # v4 ZMap: the top AS covers a large share, top-4 the vast majority.
    assert 0.15 < rows["[IPv4] ZMap"][2] < 0.6
    assert rows["[IPv4] ZMap"][3] > 0.6
    # HTTPS/SVCB discovery is drastically Cloudflare-biased.
    assert rows["[IPv4] SVCB"][2] > 0.7
    # IPv6 is more concentrated than IPv4 for ZMap.
    assert rows["[IPv6] ZMap"][2] > rows["[IPv4] ZMap"][2]


@pytest.mark.benchmark(group="figures")
def test_fig5(benchmark, campaign, output_dir):
    result = benchmark.pedantic(
        fig5, args=(campaign,), kwargs={"weeks": SCAN_WEEKS_ZMAP}, rounds=1, iterations=1
    )
    emit(output_dir, result)
    week18 = {row[1]: row[2] for row in result.rows if row[0] == 18}
    week5 = {row[1]: row[2] for row in result.rows if row[0] == 5}
    # Cloudflare's set gains ietf-01 only in week 18.
    assert any("ietf-01" in label for label in week18)
    assert not any("ietf-01" in label for label in week5)
    # The Google and Facebook sets are visible throughout.
    assert any("T051" in label for label in week18)
    assert any("mvfst" in label for label in week18)


@pytest.mark.benchmark(group="figures")
def test_fig6(benchmark, campaign, output_dir):
    result = benchmark.pedantic(
        fig6, args=(campaign,), kwargs={"weeks": SCAN_WEEKS_ZMAP}, rounds=1, iterations=1
    )
    emit(output_dir, result)
    support = {(row[0], row[1]): row[2] for row in result.rows}
    # draft-29 grows towards ~96 % (paper: 80 % -> 96 %).
    assert support[(18, "draft-29")] > support[(5, "draft-29")]
    assert support[(18, "draft-29")] > 90
    # About half of the addresses still announce Google QUIC versions.
    assert 25 < support.get((18, "Q050"), 0) < 75


@pytest.mark.benchmark(group="figures")
def test_fig7(benchmark, campaign, output_dir):
    result = benchmark.pedantic(
        fig7, args=(campaign,), kwargs={"weeks": DEFAULT_TLS_WEEKS}, rounds=1, iterations=1
    )
    emit(output_dir, result)
    def share(week, label):
        return next((row[2] for row in result.rows if row[0] == week and row[1] == label), 0.0)
    # The Cloudflare set dominates.
    assert share(18, "h3-27,h3-28,h3-29") > 30
    # Bare "quic" declines over the period.
    assert share(18, "quic") < share(10, "quic")
    # The new Google set (with h3-34) appears towards the end.
    week18_labels = {row[1] for row in result.rows if row[0] == 18}
    assert any("h3-34" in label for label in week18_labels)


@pytest.mark.benchmark(group="figures")
def test_fig8(benchmark, campaign, output_dir):
    campaign.qscan_sni_v4, campaign.qscan_nosni_v4  # warm scans
    result = benchmark.pedantic(fig8, args=(campaign,), rounds=1, iterations=1)
    emit(output_dir, result)
    rows = {row[0]: row for row in result.rows}
    # no-SNI successes cover many ASes (paper: 93 % of all seen ASes).
    assert rows["[IPv4] no SNI"][2] > 100
    # SNI successes concentrate (Cloudflare share, paper: 82.3 %).
    assert rows["[IPv4] SNI"][3] > 0.2


@pytest.mark.benchmark(group="figures")
def test_fig9(benchmark, campaign, output_dir):
    campaign.qscan_sni_v4, campaign.qscan_nosni_v4
    result = benchmark.pedantic(fig9, args=(campaign,), rounds=1, iterations=1)
    emit(output_dir, result)
    # The paper observes 45 configurations; the campaign must surface
    # (nearly) the whole catalogue.
    assert len(result.rows) >= 40
    targets = [row[1] for row in result.rows]
    ases = [row[2] for row in result.rows]
    # Rank 0 dominates targets (Cloudflare config).
    assert targets[0] > 10 * targets[5]
    # A sizeable set of configurations is single-AS (paper: 20 of 45).
    assert sum(1 for a in ases if a == 1) >= 10
    # And a few configurations span many ASes (the edge POPs).
    assert max(ases) > 50
