"""Benchmark fixtures: paper-shape-scale campaigns shared per session.

Each benchmark regenerates one paper table/figure.  The heavy scan
campaign runs once (module-level memoisation inside
:func:`repro.experiments.get_campaign`); the benchmark timing then
covers the analysis pipeline, and the rendered artefact is written to
``benchmarks/output/`` and echoed for inspection.
"""

import pathlib

import pytest

from repro.experiments import get_campaign

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def campaign():
    """The default-scale (1:1000) week-18 campaign."""
    return get_campaign(week=18, seed=0)


@pytest.fixture(scope="session")
def output_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def emit(output_dir, result):
    """Write and print a rendered experiment artefact."""
    text = result.render()
    (output_dir / f"{result.experiment_id}.txt").write_text(text + "\n")
    print()
    print(text)
    return result
