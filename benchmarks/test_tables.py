"""Benchmarks T1-T6: regenerate every table of the paper's evaluation."""

import pytest

from benchmarks.conftest import emit
from repro.experiments.tables import table1, table2, table3, table4, table5, table6
from repro.scanners.results import QScanOutcome


def _warm(campaign):
    """Force the scan stages once so benchmarks time the analysis."""
    campaign.qscan_sni_v4
    campaign.qscan_nosni_v4
    campaign.qscan_sni_v6
    campaign.qscan_nosni_v6
    campaign.goscanner_nosni_v4


@pytest.mark.benchmark(group="tables")
def test_table1(benchmark, campaign, output_dir):
    _warm(campaign)
    result = benchmark(table1, campaign)
    emit(output_dir, result)
    rows = {(r[0], r[1]): r for r in result.rows}
    # ZMap finds the most IPv4 addresses; HTTPS RRs the fewest (paper).
    assert rows[("ZMap", "IPv4")][2] > rows[("ALT-SVC", "IPv4")][2]
    assert rows[("ALT-SVC", "IPv4")][2] > rows[("HTTPS", "IPv4")][2]


@pytest.mark.benchmark(group="tables")
def test_table2(benchmark, campaign, output_dir):
    _warm(campaign)
    result = benchmark(table2, campaign, 4, "zmap")
    emit(output_dir, result)
    names = [row[1] for row in result.rows]
    # Paper Table 2 (ZMap v4): Cloudflare, Google, Akamai, Fastly, CF London.
    assert names[0] == "Cloudflare, Inc."
    assert names[1] == "Google LLC"
    assert names[2] == "Akamai International B.V."
    assert names[3] == "Fastly"
    emit(output_dir, table2(campaign, 6, "zmap"))
    emit(output_dir, table2(campaign, 4, "https"))
    emit(output_dir, table2(campaign, 6, "alt-svc"))


@pytest.mark.benchmark(group="tables")
def test_table3(benchmark, campaign, output_dir):
    _warm(campaign)
    result = benchmark(table3, campaign)
    emit(output_dir, result)
    by_label = {row[0]: row for row in result.rows}
    # The paper's qualitative shape: SNI success >> no-SNI success; the
    # no-SNI failure ordering is 0x128 > timeout > VM > other.
    assert by_label["Success"][2] > 2 * by_label["Success"][1]
    assert by_label["Crypto Error (0x128)"][1] > by_label["Timeout"][1]
    assert by_label["Timeout"][1] > by_label["Version Mismatch"][1]
    assert by_label["Version Mismatch"][1] > by_label["Other"][1]
    # IPv6 no-SNI: 0x128 dominates, success ~2x the v4 one.
    assert by_label["Crypto Error (0x128)"][3] > 40
    assert by_label["Success"][3] > by_label["Success"][1]


@pytest.mark.benchmark(group="tables")
def test_table4(benchmark, campaign, output_dir):
    _warm(campaign)
    result = benchmark(table4, campaign)
    emit(output_dir, result)
    v4 = {row[0]: row[3] for row in result.rows if row[1] == "IPv4"}
    # HTTPS-RR targets succeed less often than the other two sources.
    assert v4["https-rr"] < v4["zmap+dns"]
    assert v4["https-rr"] < v4["alt-svc"]
    assert 70 < v4["zmap+dns"] < 95


@pytest.mark.benchmark(group="tables")
def test_table5(benchmark, campaign, output_dir):
    _warm(campaign)
    result = benchmark(table5, campaign)
    emit(output_dir, result)
    rows = {row[0]: row for row in result.rows}
    # Certificates: low parity without SNI (Google self-signed quirk),
    # near-total parity with SNI.  Group/cipher always agree.
    assert rows["Certificate"][1] < 50
    assert rows["Certificate"][2] > 95
    assert rows["Key Exchange Group"][2] == 100.0
    assert rows["Cipher"][2] == 100.0
    assert rows["Extensions"][1] < rows["Extensions"][2]


@pytest.mark.benchmark(group="tables")
def test_table6(benchmark, campaign, output_dir):
    _warm(campaign)
    result = benchmark(table6, campaign)
    emit(output_dir, result)
    values = [row[0] for row in result.rows]
    assert values[:2] == ["proxygen-bolt", "gvs 1.0"]
    assert "LiteSpeed" in values and "nginx" in values
    by_value = {row[0]: row for row in result.rows}
    assert by_value["proxygen-bolt"][3] == 4  # four Facebook configs
    assert by_value["gvs 1.0"][3] == 1
    # nginx pairs with many configurations (paper: 16).
    assert by_value["nginx"][3] >= 8
