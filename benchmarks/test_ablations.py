"""Benchmarks A1-A4: ablations and methodology checks."""

import pytest

from benchmarks.conftest import emit
from repro.experiments.ablations import (
    ablation_crypto,
    ablation_fingerprint,
    ablation_padding,
    ablation_rollout,
    ablation_traffic,
    centralization_analysis,
    extension_resumption,
    overlap_analysis,
)


@pytest.mark.benchmark(group="ablations")
def test_ablation_padding(benchmark, campaign, output_dir):
    result = benchmark.pedantic(ablation_padding, args=(campaign,), rounds=1, iterations=1)
    emit(output_dir, result)
    values = {row[0]: row[1] for row in result.rows}
    # Paper §3.1: 11.3 % response rate without padding, 95.4 % in one AS.
    assert values["unpadded/padded response rate %"] < 30
    assert values["top AS share of unpadded responders %"] > 90
    assert values["top AS"] == "Fastly"


@pytest.mark.benchmark(group="ablations")
def test_overlap(benchmark, campaign, output_dir):
    campaign.altsvc_discovered_v4  # warm
    result = benchmark.pedantic(overlap_analysis, args=(campaign,), rounds=1, iterations=1)
    emit(output_dir, result)
    values = {(row[0], row[1]): row[2] for row in result.rows}
    # Every source contributes unique addresses (paper §4).
    assert values[("IPv4", "only:zmap")] > 0
    assert values[("IPv6", "only:alt-svc")] > 0
    assert values[("IPv4", "union")] > values[("IPv4", "only:zmap")]


@pytest.mark.benchmark(group="ablations")
def test_ablation_rollout(benchmark, campaign, output_dir):
    result = benchmark.pedantic(ablation_rollout, args=(campaign,), rounds=1, iterations=1)
    emit(output_dir, result)
    values = {row[0]: row[1] for row in result.rows}
    week = campaign.config.week
    mismatches = values[f"week {week}: version mismatches (no-SNI v4)"]
    assert mismatches > 0
    # Reproducible within the period, gone by August (§5).
    assert values["re-scan of mismatched targets: still mismatching"] == mismatches
    assert values["week 31 (post roll-out): version mismatches"] == 0


@pytest.mark.benchmark(group="ablations")
def test_ablation_traffic(benchmark, campaign, output_dir):
    result = benchmark.pedantic(ablation_traffic, args=(campaign,), rounds=1, iterations=1)
    emit(output_dir, result)
    values = {row[0]: row[1] for row in result.rows}
    # §3.1: at least a magnitude more traffic than the SYN sweep.
    assert values["QUIC/SYN traffic ratio"] >= 10.0


@pytest.mark.benchmark(group="ablations")
def test_ablation_fingerprint(benchmark, campaign, output_dir):
    campaign.qscan_sni_v4, campaign.qscan_nosni_v4  # warm
    result = benchmark.pedantic(ablation_fingerprint, args=(campaign,), rounds=1, iterations=1)
    emit(output_dir, result)
    accuracy = {row[0]: row[1] for row in result.rows}
    # §7: each extra observable layer helps; combined beats any single.
    combined = accuracy["tparams+alerts+server"]
    assert combined >= accuracy["tparams"]
    assert combined >= accuracy["alerts"]
    assert combined >= accuracy["server"]
    assert combined > 70


@pytest.mark.benchmark(group="ablations")
def test_centralization(benchmark, campaign, output_dir):
    campaign.qscan_sni_v4, campaign.qscan_nosni_v4  # warm
    result = benchmark.pedantic(
        centralization_analysis, args=(campaign,), rounds=1, iterations=1
    )
    emit(output_dir, result)
    values = {row[0]: row[1] for row in result.rows}
    # §7: the operator view is substantially more concentrated.
    assert values["owners (operator view)"] < values["owners (AS view)"]
    assert values["HHI (operator view)"] > values["HHI (AS view)"]
    assert values["top-5 share (operator view) %"] > values["top-5 share (AS view) %"] + 10


@pytest.mark.benchmark(group="ablations")
def test_extension_resumption(benchmark, campaign, output_dir):
    campaign.qscan_sni_v4  # warm
    result = benchmark.pedantic(
        extension_resumption, args=(campaign,), kwargs={"sample_size": 120},
        rounds=1, iterations=1,
    )
    emit(output_dir, result)
    totals = {row[0]: row for row in result.rows}["TOTAL"]
    probed, resumption, zero_rtt = totals[1], totals[2], totals[3]
    assert probed > 50
    # Most of the deployment (CDN-dominated) supports resumption; 0-RTT
    # is a subset of resumption support.
    assert resumption > probed * 0.5
    assert 0 < zero_rtt <= resumption


@pytest.mark.benchmark(group="ablations")
def test_ablation_crypto(benchmark, output_dir):
    result = benchmark.pedantic(
        ablation_crypto, kwargs={"sample_size": 30}, rounds=1, iterations=1
    )
    emit(output_dir, result)
    timings = {row[0]: row[2] for row in result.rows if row[0] != "speedup (real/fast)"}
    real = timings["real AES-GCM + X25519"]
    fast = timings["simulated (fast) crypto"]
    # The repro_why hint: real crypto is markedly slower at scan scale.
    assert real > fast
