"""Scan-engine performance benchmarks (the `BENCH_scan.json` source).

Runs the sharded-parallel engine, the persistent stage cache and the
crypto hot path against a serial baseline and writes the combined
result document to ``BENCH_scan.json`` at the repository root (same
document as ``quicrepro bench`` / ``make bench``).

The speedup assertions are scaled to the machine: parallel sharding
cannot beat serial execution on a single core, so the >= 2x bound is
only enforced where the cores exist to provide it.  The warm-cache
bound holds everywhere.
"""

import json
import os
import pathlib

import pytest

from repro.perf import run_benchmarks

REPO_ROOT = pathlib.Path(__file__).parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_scan.json"


@pytest.fixture(scope="module")
def results():
    document = run_benchmarks()
    BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")
    print(f"\nwrote {BENCH_PATH}")
    return document


def test_probe_rate(results):
    rate = results["zmap_probe_rate"]
    assert rate["probes"] > 0
    assert rate["probes_per_sec"] > 1_000


def test_handshake_rate(results):
    rate = results["qscanner_handshake_rate"]
    assert rate["handshakes"] > 0
    assert rate["handshakes_per_sec"] > 5


def test_parallel_matches_serial_and_scales(results):
    campaign = results["campaign"]
    assert campaign["parallel_cold_seconds"] > 0
    # Sharding is only a speedup when there are cores to shard across.
    if (os.cpu_count() or 1) >= 4 and results["workers"] >= 4:
        assert campaign["parallel_speedup"] >= 2.0
    else:
        pytest.skip(
            f"only {os.cpu_count()} core(s): parallel speedup recorded, not asserted"
        )


def test_warm_cache_speedup(results):
    campaign = results["campaign"]
    assert campaign["cache_warm_seconds"] > 0
    assert campaign["warm_cache_speedup"] >= 5.0
